"""The POI-Labelling Framework: the alternating inference/assignment loop.

Figure 1 of the paper: workers arrive, the task assigner hands each of them
``h`` tasks, the platform collects the answers, the inference model refreshes
the worker qualities / POI influences / label probabilities, and the updated
estimates feed the next round of assignment.  The loop stops when the
assignment budget is exhausted.

:class:`PoiLabellingFramework` orchestrates a :class:`~repro.crowd.platform.CrowdPlatform`
(which owns the budget, the arrival process and the simulated answers), a
:class:`~repro.core.inference.LocationAwareInference` model and any
:class:`~repro.core.assignment.TaskAssigner`.  Accuracy snapshots are recorded
whenever the number of spent assignments crosses one of the configured
checkpoints, which is how the budget-sweep figures (9 and 11) are produced in a
single campaign run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import TaskAssigner
from repro.core.incremental import IncrementalUpdater
from repro.core.inference import LocationAwareInference
from repro.crowd.platform import CrowdPlatform
from repro.framework.config import FrameworkConfig
from repro.framework.metrics import average_label_accuracy, labelling_accuracy


@dataclass
class AccuracySnapshot:
    """Accuracy of the current inference at a given number of spent assignments."""

    assignments_spent: int
    accuracy: float
    average_acc: float


@dataclass
class FrameworkResult:
    """Outcome of one full campaign."""

    snapshots: list[AccuracySnapshot] = field(default_factory=list)
    rounds: int = 0
    assignments_spent: int = 0
    final_accuracy: float = 0.0
    final_average_acc: float = 0.0

    def accuracy_at(self, assignments: int) -> float:
        """Accuracy at the last snapshot not exceeding ``assignments``."""
        eligible = [s for s in self.snapshots if s.assignments_spent <= assignments]
        if not eligible:
            raise ValueError(
                f"no snapshot at or below {assignments} assignments "
                f"(first snapshot at {self.snapshots[0].assignments_spent if self.snapshots else 'n/a'})"
            )
        return eligible[-1].accuracy

    @property
    def accuracy_series(self) -> list[tuple[int, float]]:
        return [(s.assignments_spent, s.accuracy) for s in self.snapshots]


class PoiLabellingFramework:
    """Orchestrates the alternating inference / task-assignment loop."""

    def __init__(
        self,
        platform: CrowdPlatform,
        inference: LocationAwareInference,
        assigner: TaskAssigner,
        config: FrameworkConfig | None = None,
    ) -> None:
        self._platform = platform
        self._inference = inference
        self._assigner = assigner
        self._config = config or FrameworkConfig()
        self._updater = IncrementalUpdater(
            inference=inference,
            full_refresh_interval=self._config.full_refresh_interval,
        )

    @property
    def platform(self) -> CrowdPlatform:
        return self._platform

    @property
    def inference(self) -> LocationAwareInference:
        return self._inference

    @property
    def assigner(self) -> TaskAssigner:
        return self._assigner

    @property
    def config(self) -> FrameworkConfig:
        return self._config

    # ----------------------------------------------------------------- running
    def run(self, max_rounds: int | None = None) -> FrameworkResult:
        """Run the campaign until the budget runs out (or ``max_rounds`` is hit)."""
        result = FrameworkResult()
        checkpoints = sorted(self._config.evaluation_checkpoints)
        next_checkpoint_index = 0
        rounds = 0

        while not self._platform.budget.exhausted and self._remaining_budget() > 0:
            if max_rounds is not None and rounds >= max_rounds:
                break
            batch = self._platform.next_worker_batch(rounds)
            if not batch:
                break

            assignment = self._assigner.assign(
                batch, self._config.tasks_per_worker, self._platform.answers
            )
            assignment = self._fit_to_budget(assignment)
            total_pairs = sum(len(task_ids) for task_ids in assignment.values())
            if total_pairs == 0:
                break

            new_answers = self._platform.execute_assignment(assignment)
            self._refresh_inference(new_answers)
            self._assigner.update_parameters(self._inference.parameters)

            rounds += 1
            spent = self._platform.budget.spent
            while (
                next_checkpoint_index < len(checkpoints)
                and spent >= checkpoints[next_checkpoint_index]
            ):
                result.snapshots.append(self._snapshot(spent))
                next_checkpoint_index += 1

        # Final full refresh so the reported accuracy uses the complete answer set.
        if len(self._platform.answers) > 0:
            self._inference.fit(self._platform.answers)
            self._updater.notify_full_refresh()
            self._assigner.update_parameters(self._inference.parameters)

        final = self._snapshot(self._platform.budget.spent)
        if not result.snapshots or result.snapshots[-1].assignments_spent != final.assignments_spent:
            result.snapshots.append(final)
        result.rounds = rounds
        result.assignments_spent = self._platform.budget.spent
        result.final_accuracy = final.accuracy
        result.final_average_acc = final.average_acc
        return result

    # ---------------------------------------------------------------- internals
    def _remaining_budget(self) -> int:
        """Assignments still allowed: bounded by both the campaign budget in the
        configuration and the platform's own (monetary) budget."""
        configured = self._config.budget - self._platform.budget.spent
        return max(0, min(configured, self._platform.budget.remaining))

    def _fit_to_budget(self, assignment: dict[str, list[str]]) -> dict[str, list[str]]:
        """Trim an assignment so it never exceeds the remaining budget.

        Trimming removes one task at a time from the workers with the most
        tasks, preserving as much of the assigner's intent as possible.
        """
        remaining = self._remaining_budget()
        total = sum(len(task_ids) for task_ids in assignment.values())
        if total <= remaining:
            return assignment
        trimmed = {worker_id: list(task_ids) for worker_id, task_ids in assignment.items()}
        excess = total - remaining
        while excess > 0:
            worker_id = max(trimmed, key=lambda w: len(trimmed[w]))
            if not trimmed[worker_id]:
                break
            trimmed[worker_id].pop()
            excess -= 1
        return trimmed

    def _refresh_inference(self, new_answers) -> None:
        """Full EM when due (or incremental updates disabled), incremental otherwise."""
        answers = self._platform.answers
        if not self._config.use_incremental_updates or self._updater.full_refresh_due:
            self._inference.fit(answers)
            self._updater.notify_full_refresh()
        elif self._inference.is_fitted:
            self._updater.apply(answers, new_answers)
        else:
            self._inference.fit(answers)
            self._updater.notify_full_refresh()

    def _snapshot(self, spent: int) -> AccuracySnapshot:
        tasks = self._platform.dataset.tasks
        if self._inference.is_fitted:
            predictions = self._inference.predict_all()
            probabilities = {
                task.task_id: self._inference.label_probabilities(task.task_id)
                for task in tasks
            }
            accuracy = labelling_accuracy(predictions, tasks)
            average_acc = average_label_accuracy(probabilities, tasks)
        else:
            accuracy = 0.5
            average_acc = 0.5
        return AccuracySnapshot(
            assignments_spent=spent, accuracy=accuracy, average_acc=average_acc
        )
