"""Named hostile-stream scenarios for the serving subsystem.

Each scenario assembles a :class:`~repro.crowd.platform.CrowdPlatform` plus a
matching :class:`~repro.serving.service.ServingConfig` so the CLI
(``repro-poi serve-sim --scenario NAME``), the scenario-matrix benchmark and
the tests all exercise exactly the same workloads:

``clean``
    An all-reliable honest pool with the reputation tracker **on**.  Because
    no worker ever crosses a demotion threshold, the trust weights stay at
    1.0, the decayed-statistics path stays on its exact branch, and the run
    is bit-identical to a reputation-blind session — the false-positive-free
    baseline every other scenario is judged against.
``spam``
    25% of the pool replaced by always-wrong and uniform-random adversaries
    (no colluders).  The honest remainder is fully reliable so every
    quarantine of a non-adversary is a genuine false positive.
``collusion``
    25% of the pool replaced by colluding rings (ring members agree on the
    same wrong label for every task), honest remainder fully reliable.
``drift``
    Honest workers on a practice curve: every worker starts the session as
    a near-coin novice and ramps up to full competence with simulated time.
    Ingestion runs with ``stat_decay < 1`` so the model's sufficient
    statistics forget the misleading novice-phase evidence; re-running with
    ``stat_decay=1.0`` gives the frozen baseline the benchmark compares
    against.
``churn``
    A mixed-quality pool cycling through active/away sessions
    (:class:`~repro.crowd.arrival.ChurnArrival`) under bursty diurnal
    traffic — the availability stressor.

Scenario generation is a pure function of ``(name, knobs, seed)``: dataset,
pool, arrival and platform RNGs are derived from the one seed with fixed
salts, so two calls with the same arguments replay byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.answer_model import AnswerSimulator, QualityDrift
from repro.crowd.arrival import (
    ChurnArrival,
    DiurnalPattern,
    UniformRandomArrival,
    WorkerArrivalProcess,
)
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import DatasetSpec, generate_dataset
from repro.framework.experiment import build_distance_model, build_worker_pool
from repro.serving import IngestConfig, ReputationConfig, ServingConfig
from repro.utils.rng import derive_seed

#: The scenario presets, in the order the benchmark matrix runs them.
SCENARIO_NAMES = ("clean", "spam", "collusion", "drift", "churn")

#: Seed salts (arbitrary distinct constants) — one independent stream per
#: stochastic component so adding a component never perturbs the others.
_SALT_DATASET = 11
_SALT_POOL = 12
_SALT_ARRIVAL = 13
_SALT_PLATFORM = 14


@dataclass(frozen=True)
class Scenario:
    """A ready-to-serve workload: the platform plus its serving config."""

    name: str
    description: str
    platform: CrowdPlatform
    config: ServingConfig


def build_scenario(
    name: str,
    *,
    num_tasks: int = 80,
    num_workers: int = 40,
    budget: int = 1500,
    seed: int = 42,
    stat_decay: float | None = None,
    reputation: bool = True,
) -> Scenario:
    """Assemble the named scenario.

    ``stat_decay=None`` keeps each scenario's own default (0.98 for ``drift``,
    1.0 — exact statistics — everywhere else); pass an explicit value to
    override it, e.g. ``stat_decay=1.0`` for the frozen-statistics baseline of
    the drift benchmark.  ``reputation=False`` serves reputation-blind, the
    control arm for the clean-scenario equivalence gate.
    """
    if name not in SCENARIO_NAMES:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
        )
    dataset = generate_dataset(
        DatasetSpec(name=f"Scenario-{name}-{num_tasks}", num_tasks=num_tasks),
        seed=derive_seed(seed, _SALT_DATASET),
    )
    pool = build_worker_pool(
        dataset, spec=_pool_spec(name, num_workers), seed=derive_seed(seed, _SALT_POOL)
    )
    distance_model = build_distance_model(dataset)

    drift: QualityDrift | None = None
    diurnal: DiurnalPattern | None = None
    decay = 1.0
    if name == "drift":
        # Practice-curve drift: every honest worker starts the session as a
        # near-coin novice (quality 0.15) and ramps to full competence over
        # the first ~70 simulated seconds.  This is the non-stationarity
        # where decayed statistics *provably* help: the stale novice-phase
        # evidence actively misleads a never-forgetting model, while under
        # fatigue-style decay-to-floor drift the most recent answers are the
        # worst ones and forgetting can only lose label evidence.
        drift = QualityDrift(rate=0.01, floor=0.15, mode="practice")
        decay = 0.98
    elif name == "churn":
        diurnal = DiurnalPattern(
            period=30.0, amplitude=0.5, burst_probability=0.1, burst_factor=4.0
        )
    if stat_decay is not None:
        decay = stat_decay

    simulator = AnswerSimulator(distance_model, noise=0.05, drift=drift)
    arrival = _arrival_process(name, pool, seed)
    platform = CrowdPlatform(
        dataset=dataset,
        worker_pool=pool,
        budget=Budget(total=budget),
        distance_model=distance_model,
        answer_simulator=simulator,
        arrival_process=arrival,
        seed=derive_seed(seed, _SALT_PLATFORM),
    )
    config = ServingConfig(
        seed=seed,
        # Every scenario — the reputation-off control arms included — uses the
        # learnable admission prior instead of the absorbing footnote-3 seed
        # and the trust-probe assignment cadence, so reputation on/off
        # comparisons isolate the tracker itself.
        ingest=IngestConfig(
            stat_decay=decay,
            admission_p_qualified=0.8,
            full_refresh_interval=100,
        ),
        # ``min_answers=20``: below ~20 answers the leave-one-out consensus a
        # worker is judged against is still thin enough to be wrong, and the
        # transient quarantines it hands out break the clean scenario's
        # bit-equivalence with the reputation-off arm.
        reputation=ReputationConfig(min_answers=20) if reputation else None,
        diurnal=diurnal,
        probe_interval=2,
    )
    return Scenario(
        name=name,
        description=_DESCRIPTIONS[name],
        platform=platform,
        config=config,
    )


def _pool_spec(name: str, num_workers: int) -> WorkerPoolSpec:
    if name == "spam":
        # Fully reliable honest remainder: any quarantined non-adversary is a
        # true false positive, which keeps the precision gate meaningful.
        # The always-wrong share stays below the label-flip tipping point —
        # past roughly 15% of the pool, coordinated inversion drags EM into
        # the inverted-label local optimum before detection can bite.
        return WorkerPoolSpec(
            num_workers=num_workers,
            reliable_fraction=1.0,
            adversary_fraction=0.25,
            adversary_weights=(0.3, 0.7, 0.0),
        )
    if name == "collusion":
        return WorkerPoolSpec(
            num_workers=num_workers,
            reliable_fraction=1.0,
            adversary_fraction=0.25,
            adversary_weights=(0.0, 0.0, 1.0),
            collusion_ring_size=3,
        )
    if name in ("clean", "drift"):
        return WorkerPoolSpec(num_workers=num_workers, reliable_fraction=1.0)
    # churn keeps the default mixed-quality population.
    return WorkerPoolSpec(num_workers=num_workers)


def _arrival_process(name: str, pool: WorkerPool, seed: int) -> WorkerArrivalProcess:
    batch_size = min(5, len(pool))
    if name == "churn":
        return ChurnArrival(
            pool,
            batch_size=batch_size,
            cycle_rounds=20,
            active_rounds=12,
            seed=derive_seed(seed, _SALT_ARRIVAL),
        )
    return UniformRandomArrival(
        pool, batch_size=batch_size, seed=derive_seed(seed, _SALT_ARRIVAL)
    )


_DESCRIPTIONS = {
    "clean": "all-reliable honest pool, reputation on (false-positive baseline)",
    "spam": "25% always-wrong/random spammers over a reliable honest pool",
    "collusion": "25% colluding rings over a reliable honest pool",
    "drift": "honest pool on a novice practice curve, decayed statistics",
    "churn": "mixed pool with session churn under bursty diurnal traffic",
}
