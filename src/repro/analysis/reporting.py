"""Plain-text rendering of series and tables.

The benchmark harness prints each figure as the series of points the paper
plots and each table as aligned text, so the reproduction output can be read
side by side with the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render ``rows`` as an aligned plain-text table with ``headers``."""
    if not headers:
        raise ValueError("a table needs at least one column")
    formatted_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in formatted_rows))
        if formatted_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(header).ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    precision: int = 3,
) -> str:
    """Render several aligned series (one column per named series).

    This is how each figure is printed: ``x_values`` along the first column
    (budget, distance bin, iteration, ...) and one column per plotted line.
    """
    headers = [x_label] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row: list[object] = [x_value]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, precision=precision)
