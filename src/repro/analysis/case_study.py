"""Per-task case study (Table I of the paper).

Table I zooms into one POI ("Beijing Olympic Forest Park") and lists, for each
of the five answering workers: their distance to the POI, their answer, their
real accuracy against the ground truth, the accuracy *modelled* by the
location-aware inference (``P(z = r_w)``, Equation 9) and their average
accuracy across all tasks (the scalar quality a location-unaware EM relies on).
The point of the table is that the modelled accuracy tracks the real accuracy
much better than the global average does, which is why IM out-infers MV and EM
on this task.

:func:`build_case_study` reproduces those columns for any task of a dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inference import LocationAwareInference
from repro.data.models import AnswerSet, Dataset, Worker
from repro.framework.metrics import worker_average_accuracy
from repro.spatial.distance import DistanceModel


@dataclass
class CaseStudyRow:
    """One worker's row of the Table I case study."""

    worker_id: str
    distance: float
    answer: tuple[int, ...]
    real_accuracy: float
    modelled_accuracy: float
    average_accuracy: float


@dataclass
class CaseStudy:
    """The full case study of one task."""

    task_id: str
    poi_name: str
    labels: tuple[str, ...]
    truth: tuple[int, ...]
    inferred_probabilities: np.ndarray
    inferred_labels: np.ndarray
    rows: list[CaseStudyRow]

    @property
    def inference_correct_fraction(self) -> float:
        """Fraction of this task's labels the model infers correctly."""
        truth = np.asarray(self.truth)
        return float(np.mean(self.inferred_labels == truth))


def build_case_study(
    task_id: str,
    dataset: Dataset,
    workers: list[Worker],
    answers: AnswerSet,
    inference: LocationAwareInference,
    distance_model: DistanceModel,
) -> CaseStudy:
    """Build the Table I columns for ``task_id`` from a fitted inference model."""
    if not inference.is_fitted:
        raise RuntimeError("the inference model must be fitted before a case study")
    task = dataset.task_by_id(task_id)
    worker_map = {worker.worker_id: worker for worker in workers}
    averages = worker_average_accuracy(answers, dataset)

    rows = []
    for answer in answers.answers_of_task(task_id):
        worker = worker_map.get(answer.worker_id)
        if worker is None:
            continue
        distance = distance_model.worker_task_distance(worker.locations, task.location)
        rows.append(
            CaseStudyRow(
                worker_id=answer.worker_id,
                distance=distance,
                answer=answer.responses,
                real_accuracy=answer.accuracy_against(task.truth),
                modelled_accuracy=inference.answer_accuracy(answer.worker_id, task_id),
                average_accuracy=averages.get(answer.worker_id, 0.5),
            )
        )

    probabilities = inference.label_probabilities(task_id)
    return CaseStudy(
        task_id=task_id,
        poi_name=task.poi.name,
        labels=task.labels,
        truth=task.truth,
        inferred_probabilities=probabilities,
        inferred_labels=(probabilities >= 0.5).astype(int),
        rows=rows,
    )


def most_disagreed_task(answers: AnswerSet, dataset: Dataset) -> str:
    """Pick the task whose workers disagree the most (an interesting case study).

    Disagreement is measured as the summed per-label vote entropy proxy
    ``p·(1-p)`` where ``p`` is the fraction of positive votes; tasks with fewer
    than two answers are skipped.  Falls back to the first answered task.
    """
    best_task = None
    best_score = -1.0
    for task in dataset.tasks:
        task_answers = answers.answers_of_task(task.task_id)
        if len(task_answers) < 2:
            continue
        votes = np.mean([answer.responses for answer in task_answers], axis=0)
        score = float(np.sum(votes * (1.0 - votes)))
        if score > best_score:
            best_score = score
            best_task = task.task_id
    if best_task is None:
        answered = answers.task_ids()
        if not answered:
            raise ValueError("no answered tasks available for a case study")
        best_task = answered[0]
    return best_task
