"""Data-analysis routines behind every figure and table of the paper's evaluation.

* :mod:`repro.analysis.worker_analysis` — worker quality histogram (Figure 6)
  and the distance-vs-accuracy curves of the most active workers (Figure 7).
* :mod:`repro.analysis.poi_analysis` — distance-vs-accuracy per POI popularity
  class (Figure 8).
* :mod:`repro.analysis.convergence` — EM convergence traces (Figure 10).
* :mod:`repro.analysis.case_study` — the per-task case study of Table I.
* :mod:`repro.analysis.reporting` — plain-text rendering of series and tables
  so benchmarks can print paper-style output.
"""

from repro.analysis.worker_analysis import (
    distance_accuracy_curves,
    worker_quality_histogram,
)
from repro.analysis.poi_analysis import poi_influence_curves, review_count_class
from repro.analysis.convergence import convergence_trace
from repro.analysis.case_study import CaseStudyRow, build_case_study
from repro.analysis.reporting import format_series_table, format_table

__all__ = [
    "worker_quality_histogram",
    "distance_accuracy_curves",
    "poi_influence_curves",
    "review_count_class",
    "convergence_trace",
    "CaseStudyRow",
    "build_case_study",
    "format_series_table",
    "format_table",
]
