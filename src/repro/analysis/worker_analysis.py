"""Worker-centric data analysis (Figures 6 and 7 of the paper).

* Figure 6: the distribution of per-worker accuracy restricted to answers where
  the worker-to-POI distance is at most 0.2 — showing that even nearby tasks
  receive low-quality answers from some workers (inherent quality).
* Figure 7: per-worker accuracy as a function of distance for the most active
  workers — showing that accuracy decays with distance and that the decay rate
  differs across workers (distance-aware quality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.models import AnswerSet, Dataset, Worker
from repro.spatial.distance import DistanceModel
from repro.utils.binning import bin_edges, histogram_percentages, mean_by_bin


@dataclass
class WorkerQualityHistogram:
    """Percentage of workers per accuracy range (Figure 6)."""

    edges: np.ndarray
    percentages: np.ndarray
    worker_accuracies: dict[str, float]


def _worker_index(workers: list[Worker]) -> dict[str, Worker]:
    return {worker.worker_id: worker for worker in workers}


def worker_quality_histogram(
    answers: AnswerSet,
    dataset: Dataset,
    workers: list[Worker],
    distance_model: DistanceModel,
    max_distance: float = 0.2,
    num_bins: int = 5,
) -> WorkerQualityHistogram:
    """Per-worker accuracy histogram over answers within ``max_distance``.

    Workers with no nearby answers are excluded (they contribute nothing to the
    figure), matching the paper's methodology of controlling for distance
    before attributing differences to inherent quality.
    """
    worker_map = _worker_index(workers)
    task_map = dataset.task_index

    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for answer in answers:
        worker = worker_map.get(answer.worker_id)
        task = task_map.get(answer.task_id)
        if worker is None or task is None:
            continue
        distance = distance_model.worker_task_distance(worker.locations, task.location)
        if distance > max_distance:
            continue
        accuracy = answer.accuracy_against(task.truth)
        sums[answer.worker_id] = sums.get(answer.worker_id, 0.0) + accuracy
        counts[answer.worker_id] = counts.get(answer.worker_id, 0) + 1

    worker_accuracies = {
        worker_id: sums[worker_id] / counts[worker_id] for worker_id in sums
    }
    edges = bin_edges(0.0, 1.0, num_bins)
    percentages = histogram_percentages(list(worker_accuracies.values()), edges)
    return WorkerQualityHistogram(
        edges=edges, percentages=percentages, worker_accuracies=worker_accuracies
    )


@dataclass
class DistanceAccuracyCurve:
    """Average accuracy per distance bin for one worker (one line of Figure 7)."""

    worker_id: str
    edges: np.ndarray
    accuracies: list[float | None]
    answer_count: int


def distance_accuracy_curves(
    answers: AnswerSet,
    dataset: Dataset,
    workers: list[Worker],
    distance_model: DistanceModel,
    top_k: int = 5,
    num_bins: int = 5,
) -> list[DistanceAccuracyCurve]:
    """Distance-bucketed accuracy of the ``top_k`` most active workers (Figure 7)."""
    worker_map = _worker_index(workers)
    task_map = dataset.task_index

    per_worker: dict[str, list[tuple[float, float]]] = {}
    for answer in answers:
        worker = worker_map.get(answer.worker_id)
        task = task_map.get(answer.task_id)
        if worker is None or task is None:
            continue
        distance = distance_model.worker_task_distance(worker.locations, task.location)
        accuracy = answer.accuracy_against(task.truth)
        per_worker.setdefault(answer.worker_id, []).append((distance, accuracy))

    most_active = sorted(
        per_worker, key=lambda worker_id: (-len(per_worker[worker_id]), worker_id)
    )[:top_k]

    edges = bin_edges(0.0, 1.0, num_bins)
    curves = []
    for worker_id in most_active:
        observations = per_worker[worker_id]
        distances = [d for d, _ in observations]
        accuracies = [a for _, a in observations]
        curves.append(
            DistanceAccuracyCurve(
                worker_id=worker_id,
                edges=edges,
                accuracies=mean_by_bin(distances, accuracies, edges),
                answer_count=len(observations),
            )
        )
    return curves
