"""EM convergence analysis (Figure 10 of the paper).

The paper tracks the "maximum variance of parameters" — the largest absolute
change of any parameter between consecutive EM iterations — and declares
convergence when it drops below 0.005.  The
:class:`~repro.core.inference.InferenceResult` already records this trace; the
helper here re-runs the model with a fixed (large) iteration cap so that the
full curve is available even when the default configuration would stop early.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.data.models import AnswerSet, Dataset, Worker
from repro.spatial.distance import DistanceModel


@dataclass
class ConvergenceTrace:
    """Per-iteration maximum parameter change and log-likelihood."""

    max_parameter_change: list[float]
    log_likelihood: list[float]
    iterations_to_threshold: int | None
    threshold: float

    @property
    def iterations(self) -> int:
        return len(self.max_parameter_change)


def convergence_trace(
    dataset: Dataset,
    workers: list[Worker],
    answers: AnswerSet,
    distance_model: DistanceModel,
    config: InferenceConfig | None = None,
    max_iterations: int = 30,
    threshold: float = 0.005,
) -> ConvergenceTrace:
    """Run EM for ``max_iterations`` iterations and return the convergence trace."""
    base = config or InferenceConfig()
    trace_config = replace(
        base, max_iterations=max_iterations, convergence_threshold=0.0
    )
    model = LocationAwareInference(
        dataset.tasks, workers, distance_model, config=trace_config
    )
    result = model.run_em(answers)

    iterations_to_threshold = None
    for index, change in enumerate(result.convergence_trace):
        if change <= threshold:
            iterations_to_threshold = index + 1
            break

    return ConvergenceTrace(
        max_parameter_change=list(result.convergence_trace),
        log_likelihood=list(result.log_likelihood_trace),
        iterations_to_threshold=iterations_to_threshold,
        threshold=threshold,
    )
