"""POI-centric data analysis (Figure 8 of the paper).

POIs are bucketed by their review count (the paper's proxy for real-world
influence: >2500, >1000, >500, <500 reviews) and, within each bucket, answer
accuracy is averaged per distance range.  Popular POIs keep high accuracy even
for distant workers; obscure POIs degrade quickly — the behaviour the model's
POI-influence component captures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.models import AnswerSet, Dataset, Worker
from repro.spatial.distance import DistanceModel
from repro.utils.binning import bin_edges, mean_by_bin

#: The paper's review-count classes, from most to least popular.
REVIEW_CLASSES: tuple[str, ...] = ("Rev>2500", "Rev>1000", "Rev>500", "Rev<500")


def review_count_class(review_count: int) -> str:
    """Map a review count to its Figure 8 popularity class."""
    if review_count > 2500:
        return "Rev>2500"
    if review_count > 1000:
        return "Rev>1000"
    if review_count > 500:
        return "Rev>500"
    return "Rev<500"


@dataclass
class PoiInfluenceCurve:
    """Average accuracy per distance bin for one POI popularity class."""

    review_class: str
    edges: np.ndarray
    accuracies: list[float | None]
    answer_count: int


def poi_influence_curves(
    answers: AnswerSet,
    dataset: Dataset,
    workers: list[Worker],
    distance_model: DistanceModel,
    num_bins: int = 5,
) -> list[PoiInfluenceCurve]:
    """Distance-bucketed answer accuracy per POI popularity class (Figure 8)."""
    worker_map = {worker.worker_id: worker for worker in workers}
    task_map = dataset.task_index

    per_class: dict[str, list[tuple[float, float]]] = {name: [] for name in REVIEW_CLASSES}
    for answer in answers:
        worker = worker_map.get(answer.worker_id)
        task = task_map.get(answer.task_id)
        if worker is None or task is None:
            continue
        distance = distance_model.worker_task_distance(worker.locations, task.location)
        accuracy = answer.accuracy_against(task.truth)
        per_class[review_count_class(task.poi.review_count)].append((distance, accuracy))

    edges = bin_edges(0.0, 1.0, num_bins)
    curves = []
    for review_class in REVIEW_CLASSES:
        observations = per_class[review_class]
        if observations:
            distances = [d for d, _ in observations]
            accuracies = [a for _, a in observations]
            means = mean_by_bin(distances, accuracies, edges)
        else:
            means = [None] * num_bins
        curves.append(
            PoiInfluenceCurve(
                review_class=review_class,
                edges=edges,
                accuracies=means,
                answer_count=len(observations),
            )
        )
    return curves
