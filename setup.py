"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in editable
mode on environments whose setuptools/pip lack PEP 660 editable-wheel support
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
