"""Tests for the pipelined serving loop (repro.serving.pipeline + wiring).

Covers, in order:

- serial-vs-pipelined equivalence: the same event stream through both loop
  modes ends in bit-equal parameter stores after the closing cold full
  refresh, with the pipelined run having genuinely overlapped fits;
- the deterministic launch/integrate schedule (pure function of applied
  answer counts) and its book-keeping counters;
- :class:`~repro.serving.pipeline.RefreshWorker` unit behaviour, including
  exception capture on the worker thread;
- :class:`~repro.serving.pipeline.PendingRefresh` reconcile accounting;
- thread-safety of :class:`~repro.serving.snapshots.SnapshotStore` and
  delta-chain materialisation under concurrent readers and a writer;
- isolation of :meth:`IncrementalUpdater.capture_refresh_state` copies from
  subsequent live mutations.
"""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.inference import LocationAwareInference
from repro.core.params import StoreDelta
from repro.crowd.answer_model import AnswerSimulator
from repro.serving.faults import SimulatedCrash
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig
from repro.serving.pipeline import PendingRefresh, RefreshOutcome, RefreshWorker
from repro.serving.snapshots import SnapshotStore


def make_events(small_dataset, worker_pool, distance_model, count, gap=0.1):
    """Deterministic stream of distinct (worker, task) answer events."""
    simulator = AnswerSimulator(distance_model, noise=0.0)
    events = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if index >= count:
                return events
            events.append(
                AnswerEvent(
                    simulator.sample_answer(profile, task, seed=1000 + index),
                    time=gap * index,
                )
            )
            index += 1
    return events


def run_stream(small_dataset, worker_pool, distance_model, events, *, pipeline):
    """Feed ``events`` through one ingest loop and close with a cold full fit."""
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    snapshots = SnapshotStore(max_snapshots=64)
    config = IngestConfig(
        max_batch_answers=6,
        max_batch_delay=1000.0,
        full_refresh_interval=24,
        pipeline=pipeline,
        pipeline_lag_answers=6,
    )
    ingest = AnswerIngestor(inference, snapshots, config=config)
    for event in events:
        ingest.submit(event)
    # Cold closing fit: both modes end on a full E/M pass over the (bit-equal)
    # live tensors, so any divergence in the stores below is a pipelining bug.
    ingest.flush(full=True, warm=False)
    ingest.close()
    return ingest, snapshots


class TestPipelinedEquivalence:
    def test_pipelined_stream_matches_serial_oracle(
        self, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 72)
        serial, _ = run_stream(
            small_dataset, worker_pool, distance_model, events, pipeline=False
        )
        piped, _ = run_stream(
            small_dataset, worker_pool, distance_model, events, pipeline=True
        )
        serial_store = serial._updater.live_store
        piped_store = piped._updater.live_store
        assert serial_store.max_difference(piped_store) <= 1e-9
        np.testing.assert_array_equal(
            serial_store.p_qualified, piped_store.p_qualified
        )
        np.testing.assert_array_equal(
            serial_store.label_probs, piped_store.label_probs
        )
        # The pipelined run did real overlapped work along the way.
        assert piped.stats.refreshes_overlapped == 2
        assert serial.stats.refreshes_overlapped == 0

    def test_launch_and_integrate_points_are_count_based(
        self, small_dataset, worker_pool, distance_model
    ):
        """Interval 24 + lag 6 over 72 answers: launches at 36 and 66,
        integrations at 42 and 72 — independent of fit wall time."""
        events = make_events(small_dataset, worker_pool, distance_model, 72)
        ingest, snapshots = run_stream(
            small_dataset, worker_pool, distance_model, events, pipeline=True
        )
        stats = ingest.stats
        assert stats.answers == 72
        assert stats.refreshes_overlapped == 2
        # Each refresh integrated after exactly one lag's worth of answers.
        assert stats.answers_reconciled == 12
        # Cold start at 6, two overlapped launches, plus the closing flush.
        assert stats.full_refreshes == 4
        assert stats.refresh_failures == 0
        assert stats.max_flush_stall_ms > 0.0
        assert snapshots.latest().source == "full_refresh"

    def test_serial_mode_never_touches_the_worker(
        self, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 72)
        ingest, _ = run_stream(
            small_dataset, worker_pool, distance_model, events, pipeline=False
        )
        assert ingest._refresh_worker.launches == 0
        assert ingest.stats.answers_reconciled == 0
        assert ingest.stats.refresh_wait_seconds == 0.0

    def test_reference_engine_falls_back_to_serial(
        self, small_dataset, worker_pool, distance_model
    ):
        """The reference engine has no tensor form to snapshot, so the
        pipeline flag silently degrades to the blocking loop."""
        from repro.core.inference import InferenceConfig

        inference = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(engine="reference"),
        )
        ingest = AnswerIngestor(
            inference,
            SnapshotStore(),
            config=IngestConfig(
                max_batch_answers=4, max_batch_delay=100.0, full_refresh_interval=8
            ),
        )
        for event in make_events(small_dataset, worker_pool, distance_model, 12):
            ingest.submit(event)
        assert ingest._refresh_worker.launches == 0
        assert ingest.stats.refreshes_overlapped == 0
        ingest.close()


class TestRefreshWorker:
    def test_launch_wait_roundtrip(self):
        worker = RefreshWorker()
        assert not worker.in_flight
        worker.launch(lambda: "fitted")
        assert worker.in_flight
        outcome = worker.wait()
        assert isinstance(outcome, RefreshOutcome)
        assert outcome.result == "fitted"
        assert outcome.error is None
        assert outcome.fit_seconds >= 0.0
        assert not worker.in_flight
        assert worker.launches == 1

    def test_sequential_launches_allowed(self):
        worker = RefreshWorker()
        for value in range(3):
            worker.launch(lambda value=value: value)
            assert worker.wait().result == value
        assert worker.launches == 3

    def test_launch_while_in_flight_raises(self):
        release = threading.Event()
        worker = RefreshWorker()
        worker.launch(release.wait)
        try:
            with pytest.raises(RuntimeError):
                worker.launch(lambda: None)
        finally:
            release.set()
            worker.wait()

    def test_wait_without_launch_raises(self):
        with pytest.raises(RuntimeError):
            RefreshWorker().wait()

    def test_ordinary_exception_is_captured_not_raised(self):
        worker = RefreshWorker()

        def explode():
            raise ValueError("fit diverged")

        worker.launch(explode)
        outcome = worker.wait()
        assert outcome.result is None
        assert isinstance(outcome.error, ValueError)

    def test_simulated_crash_is_captured_for_relay(self):
        """BaseException subclasses must not die silently on the thread —
        they are carried back for the ingest loop to re-raise."""
        worker = RefreshWorker()

        def crash():
            raise SimulatedCrash("refresh.background")

        worker.launch(crash)
        outcome = worker.wait()
        assert isinstance(outcome.error, SimulatedCrash)

    def test_close_is_noop_when_idle_and_drains_when_not(self):
        worker = RefreshWorker()
        assert worker.close() is None
        worker.launch(lambda: 41)
        drained = worker.close()
        assert drained is not None
        assert drained.result == 41
        assert not worker.in_flight


class TestPendingRefresh:
    def test_note_batch_accumulates_counts_and_entities(self):
        pending = PendingRefresh(watermark_answers=30, warm=True)
        batch1 = [
            SimpleNamespace(worker_id="w1", task_id="t1"),
            SimpleNamespace(worker_id="w2", task_id="t1"),
        ]
        batch2 = [SimpleNamespace(worker_id="w1", task_id="t2")]
        pending.note_batch(batch1)
        pending.note_batch(batch2)
        assert pending.answers_since_launch == 3
        assert pending.reconcile_workers == {"w1", "w2"}
        assert pending.reconcile_tasks == {"t1", "t2"}


@pytest.fixture()
def fitted_store(small_dataset, worker_pool, distance_model, collected_answers):
    """An ArrayParameterStore flattened from a real fit over the test corpus."""
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    worker_ids = collected_answers.worker_ids()
    task_ids = collected_answers.task_ids()
    registry = small_dataset.task_index
    num_labels = [registry[task_id].num_labels for task_id in task_ids]
    return model.parameters.to_array_store(worker_ids, task_ids, num_labels)


class TestSnapshotStoreConcurrency:
    """A writer publishing full snapshots and delta chains while readers
    materialise: no torn reads, no SnapshotIntegrityError, sane values."""

    def _delta(self, store, p_qualified):
        return StoreDelta(
            worker_rows=np.asarray([0], dtype=np.intp),
            p_qualified=np.asarray([p_qualified]),
            distance_weights=np.asarray(store.distance_weights[:1]).copy(),
            task_rows=np.empty(0, dtype=np.intp),
            influence_weights=np.empty(
                (0,) + np.asarray(store.influence_weights).shape[1:]
            ),
            label_slots=np.empty(0, dtype=np.intp),
            label_probs=np.empty(0),
            num_workers=store.num_workers,
            num_tasks=store.num_tasks,
        )

    def test_concurrent_publish_and_materialise(self, fitted_store):
        snapshots = SnapshotStore(max_snapshots=8)
        snapshots.publish(fitted_store, source="full_refresh")
        errors: list[BaseException] = []
        done = threading.Event()

        def writer():
            try:
                for i in range(300):
                    if i % 20 == 0:
                        snapshots.publish(fitted_store, source="full_refresh")
                    else:
                        snapshots.publish_delta(
                            self._delta(fitted_store, 0.05 + (i % 18) * 0.05)
                        )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    snapshot = snapshots.latest()
                    store = snapshot.store  # materialises any delta chain
                    assert store.num_workers == fitted_store.num_workers
                    assert store.num_tasks == fitted_store.num_tasks
                    assert 0.0 < store.p_qualified[0] <= 1.0
                    assert np.all(np.isfinite(store.label_probs))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        # The chain still materialises correctly after the storm.
        final = snapshots.latest().store
        assert float(final.p_qualified[0]) == pytest.approx(0.05 + (299 % 18) * 0.05)

    def test_concurrent_reads_of_one_deep_chain(self, fitted_store):
        """Many threads racing to materialise the *same* delta chain must
        all see the identical store (first materialisation wins, others
        reuse it)."""
        snapshots = SnapshotStore(max_snapshots=64)
        snapshots.publish(fitted_store, source="full_refresh")
        for i in range(12):
            tip = snapshots.publish_delta(self._delta(fitted_store, 0.1 + i * 0.05))
        expected = 0.1 + 11 * 0.05
        results: list[float] = []
        errors: list[BaseException] = []
        gate = threading.Barrier(8)

        def materialise():
            try:
                gate.wait(timeout=30.0)
                results.append(float(tip.store.p_qualified[0]))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=materialise) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        assert results == [pytest.approx(expected)] * 8


class TestCaptureIsolation:
    def test_captured_state_is_frozen_against_live_mutation(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        ingest = AnswerIngestor(
            inference,
            SnapshotStore(),
            config=IngestConfig(
                max_batch_answers=4,
                max_batch_delay=1000.0,
                full_refresh_interval=100,
            ),
        )
        events = make_events(small_dataset, worker_pool, distance_model, 16)
        for event in events[:8]:
            ingest.submit(event)
        tensor, initial, initial_store, weights = (
            ingest._updater.capture_refresh_state(warm=True)
        )
        assert weights is None
        assert tensor.num_answers == 8
        assert initial is not None
        assert initial_store is not None
        frozen = np.asarray(initial_store.p_qualified).copy()
        # Keep streaming: the live tensor and store move on...
        for event in events[8:]:
            ingest.submit(event)
        assert ingest._updater.live_tensor.num_answers == 16
        # ...while the captured copies stay put.
        assert tensor.num_answers == 8
        np.testing.assert_array_equal(initial_store.p_qualified, frozen)
        ingest.close()
