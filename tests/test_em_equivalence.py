"""Equivalence of the vectorized EM engine against the per-record reference.

The vectorized engine (``engine="vectorized"``) must reproduce the reference
per-record engine (``engine="reference"``) to within floating-point noise —
the tolerance enforced here is 1e-9 on every parameter and on the (relative)
log-likelihood, across cold starts, warm starts and incremental updates, on
both multi-label and binary corpora.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import IncrementalUpdater
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.platform import CrowdPlatform
from repro.crowd.budget import Budget
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import DatasetSpec, generate_dataset
from repro.data.models import AnswerSet
from repro.spatial.bbox import BEIJING_BBOX, BoundingBox
from repro.spatial.distance import DistanceModel

PARAM_TOL = 1e-9


def build_corpus(num_tasks=10, labels_per_task=4, num_workers=6, seed=77, answers_per_task=3):
    """A small deterministic campaign: dataset, workers, distances, answers."""
    spec = DatasetSpec(
        name=f"Equiv-{labels_per_task}",
        num_tasks=num_tasks,
        labels_per_task=labels_per_task,
        bbox=BEIJING_BBOX,
        metric="euclidean",
        num_clusters=3,
    )
    dataset = generate_dataset(spec, seed=seed)
    distance_model = DistanceModel(max_distance=dataset.max_distance, metric="euclidean")
    bounds = BoundingBox.from_points(dataset.poi_locations).expand(0.05)
    pool = WorkerPool.generate(
        bounds,
        spec=WorkerPoolSpec(num_workers=num_workers, locations_per_worker=(1, 2)),
        seed=seed + 1,
    )
    platform = CrowdPlatform(
        dataset=dataset,
        worker_pool=pool,
        budget=Budget(total=answers_per_task * num_tasks * 2),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        arrival_process=UniformRandomArrival(pool, batch_size=3, seed=seed + 2),
        seed=seed + 2,
    )
    answers = platform.collect_batch_answers(answers_per_task=answers_per_task, seed=seed + 3)
    return dataset, pool, distance_model, answers


def run_both(dataset, pool, distance_model, answers, initial=None, **config_kwargs):
    results = {}
    for engine in ("reference", "vectorized"):
        config = InferenceConfig(engine=engine, **config_kwargs)
        model = LocationAwareInference(
            dataset.tasks, pool.workers, distance_model, config=config
        )
        results[engine] = model.run_em(answers, initial=initial)
    return results["reference"], results["vectorized"]


def assert_parameters_close(a, b, tol=PARAM_TOL):
    assert set(a.workers) == set(b.workers)
    assert set(a.tasks) == set(b.tasks)
    for worker_id, wa in a.workers.items():
        wb = b.workers[worker_id]
        assert abs(wa.p_qualified - wb.p_qualified) <= tol, worker_id
        assert np.abs(wa.distance_weights - wb.distance_weights).max() <= tol, worker_id
    for task_id, ta in a.tasks.items():
        tb = b.tasks[task_id]
        assert ta.num_labels == tb.num_labels, task_id
        assert np.abs(ta.label_probs - tb.label_probs).max() <= tol, task_id
        assert np.abs(ta.influence_weights - tb.influence_weights).max() <= tol, task_id


def assert_results_equivalent(ref, vec, tol=PARAM_TOL):
    assert ref.iterations == vec.iterations
    assert ref.converged == vec.converged
    for da, db in zip(ref.convergence_trace, vec.convergence_trace):
        assert abs(da - db) <= tol
    for la, lb in zip(ref.log_likelihood_trace, vec.log_likelihood_trace):
        assert abs(la - lb) <= tol * max(1.0, abs(la))
    assert_parameters_close(ref.parameters, vec.parameters, tol=tol)


class TestColdStartEquivalence:
    def test_multi_label_corpus(self):
        corpus = build_corpus(labels_per_task=4)
        ref, vec = run_both(*corpus)
        assert_results_equivalent(ref, vec)

    def test_binary_corpus(self):
        corpus = build_corpus(labels_per_task=1, seed=101)
        ref, vec = run_both(*corpus)
        assert_results_equivalent(ref, vec)

    def test_fixed_iteration_budget(self):
        corpus = build_corpus(seed=5)
        ref, vec = run_both(*corpus, max_iterations=7, convergence_threshold=0.0)
        assert ref.iterations == vec.iterations == 7
        assert_results_equivalent(ref, vec)

    def test_asymmetric_alpha(self):
        corpus = build_corpus(seed=31)
        ref, vec = run_both(*corpus, alpha=0.8)
        assert_results_equivalent(ref, vec)

    def test_empty_answer_log(self):
        dataset, pool, distance_model, _ = build_corpus(num_tasks=3, seed=3)
        ref, vec = run_both(dataset, pool, distance_model, AnswerSet())
        assert_results_equivalent(ref, vec)
        assert vec.converged and vec.iterations == 1
        assert not vec.parameters.workers and not vec.parameters.tasks


class TestWarmStartEquivalence:
    def test_warm_start_from_full_fit(self):
        dataset, pool, distance_model, answers = build_corpus(seed=13)
        cold_ref, cold_vec = run_both(dataset, pool, distance_model, answers)
        ref, vec = run_both(
            dataset, pool, distance_model, answers, initial=cold_ref.parameters
        )
        # Warm-starting from a converged estimate converges immediately in
        # both engines.
        assert_results_equivalent(ref, vec)

    def test_warm_start_with_missing_entities(self):
        """Initial parameters estimated on a subset lack some workers/tasks."""
        dataset, pool, distance_model, answers = build_corpus(seed=29)
        subset = AnswerSet(list(answers)[: len(answers) // 3])
        warm_ref, _ = run_both(dataset, pool, distance_model, subset)
        ref, vec = run_both(
            dataset, pool, distance_model, answers, initial=warm_ref.parameters
        )
        assert_results_equivalent(ref, vec)

    def test_warm_start_under_different_alpha(self):
        """A warm start fit under another alpha: only the first E-step sees it.

        The reference M-step re-emits parameters under the *config's* alpha
        every iteration, so the vectorized engine must not keep the
        warm-start's alpha beyond iteration one — and the returned parameters
        must carry the config's alpha for Equation 9 consumers.
        """
        dataset, pool, distance_model, answers = build_corpus(seed=67)
        old_ref, _ = run_both(dataset, pool, distance_model, answers, alpha=0.5)
        assert old_ref.parameters.alpha == pytest.approx(0.5)
        ref, vec = run_both(
            dataset, pool, distance_model, answers,
            initial=old_ref.parameters, alpha=0.8,
        )
        assert ref.parameters.alpha == vec.parameters.alpha == pytest.approx(0.8)
        assert_results_equivalent(ref, vec)

    def test_warm_start_with_extra_entities(self):
        """Initial parameters carry workers/tasks absent from the answer log."""
        dataset, pool, distance_model, answers = build_corpus(seed=41)
        full_ref, _ = run_both(dataset, pool, distance_model, answers)
        subset = AnswerSet(list(answers)[: len(answers) // 2])
        ref, vec = run_both(
            dataset, pool, distance_model, subset, initial=full_ref.parameters
        )
        assert_results_equivalent(ref, vec)


class TestIncrementalEquivalence:
    def _fresh_answers(self, dataset, pool, distance_model, answers, count):
        simulator = AnswerSimulator(distance_model, noise=0.0)
        fresh = []
        for profile in pool:
            for task in dataset.tasks:
                if answers.get(profile.worker_id, task.task_id) is None:
                    fresh.append(simulator.sample_answer(profile, task, seed=1234))
                    break
            if len(fresh) >= count:
                break
        assert fresh, "corpus saturated; enlarge the dataset"
        return fresh

    def test_incremental_updates_match(self):
        dataset, pool, distance_model, answers = build_corpus(seed=59)
        new_answers = self._fresh_answers(dataset, pool, distance_model, answers, 4)
        grown = answers.copy()
        for answer in new_answers:
            grown.add(answer)

        # Seed both engines with the *identical* estimate so the test isolates
        # the incremental sweep itself.
        seed_model = LocationAwareInference(
            dataset.tasks, pool.workers, distance_model,
            config=InferenceConfig(engine="reference"),
        )
        seed_params = seed_model.run_em(answers).parameters

        updated = {}
        for engine in ("reference", "vectorized"):
            config = InferenceConfig(engine=engine)
            model = LocationAwareInference(
                dataset.tasks, pool.workers, distance_model, config=config
            )
            model._parameters = seed_params.copy()
            model._fitted = True
            updater = IncrementalUpdater(model, local_iterations=2)
            updated[engine] = updater.apply(grown, new_answers)

        assert_parameters_close(updated["reference"], updated["vectorized"])


@pytest.mark.slow
class TestScalabilitySizedEquivalence:
    def test_larger_seeded_corpus(self):
        """A few hundred answers over many tasks, capped iterations."""
        corpus = build_corpus(
            num_tasks=60, labels_per_task=6, num_workers=25, seed=91, answers_per_task=4
        )
        ref, vec = run_both(*corpus, max_iterations=15)
        assert_results_equivalent(ref, vec)
