"""Tests for repro.crowd.answer_model."""

import numpy as np
import pytest

from repro.crowd.answer_model import AnswerSimulator, influence_lambda_for_reviews
from repro.crowd.worker_pool import WorkerProfile
from repro.data.models import POI, Task, Worker
from repro.spatial.distance import DistanceModel
from repro.spatial.geometry import GeoPoint


def make_task(reviews=3000, location=GeoPoint(0.0, 0.0)):
    poi = POI(poi_id="p", name="POI", location=location, review_count=reviews)
    return Task(task_id="t", poi=poi, labels=("a", "b", "c", "d"), truth=(1, 0, 1, 0))


def make_profile(quality=0.95, lam=0.1, location=GeoPoint(0.0, 0.0)):
    return WorkerProfile(
        worker=Worker("w", (location,)), inherent_quality=quality, distance_lambda=lam
    )


@pytest.fixture()
def distance_model():
    return DistanceModel(max_distance=10.0)


class TestInfluenceLambda:
    def test_classes(self):
        assert influence_lambda_for_reviews(3000) == 0.1
        assert influence_lambda_for_reviews(1500) == 2.0
        assert influence_lambda_for_reviews(600) == 10.0
        assert influence_lambda_for_reviews(100) == 100.0

    def test_monotone_in_reviews(self):
        lambdas = [influence_lambda_for_reviews(r) for r in (100, 600, 1500, 3000)]
        assert lambdas == sorted(lambdas, reverse=True)


class TestAnswerSimulator:
    def test_invalid_alpha(self, distance_model):
        with pytest.raises(ValueError):
            AnswerSimulator(distance_model, alpha=1.5)

    def test_invalid_noise(self, distance_model):
        with pytest.raises(ValueError):
            AnswerSimulator(distance_model, noise=-0.1)

    def test_correct_probability_bounds(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        p = simulator.correct_probability(make_profile(), make_task())
        assert 0.0 <= p <= 1.0

    def test_high_quality_nearby_worker_is_accurate(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        p = simulator.correct_probability(make_profile(quality=0.98, lam=0.1), make_task())
        assert p > 0.9

    def test_spammer_is_near_random(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        p = simulator.correct_probability(make_profile(quality=0.0), make_task())
        assert p == pytest.approx(0.5)

    def test_distance_decreases_accuracy(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        profile_far = make_profile(quality=0.95, lam=100.0, location=GeoPoint(8.0, 0.0))
        profile_near = make_profile(quality=0.95, lam=100.0, location=GeoPoint(0.1, 0.0))
        task = make_task(reviews=100)
        assert simulator.correct_probability(profile_near, task) > simulator.correct_probability(
            profile_far, task
        )

    def test_popular_poi_resists_distance(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        far = GeoPoint(9.0, 0.0)
        popular = make_task(reviews=5000)
        obscure = make_task(reviews=50)
        profile = make_profile(quality=0.95, lam=100.0, location=far)
        assert simulator.correct_probability(profile, popular) > simulator.correct_probability(
            profile, obscure
        )

    def test_noise_pulls_towards_half(self, distance_model):
        clean = AnswerSimulator(distance_model, noise=0.0)
        noisy = AnswerSimulator(distance_model, noise=0.5)
        profile = make_profile(quality=0.98, lam=0.1)
        task = make_task()
        assert noisy.correct_probability(profile, task) < clean.correct_probability(
            profile, task
        )

    def test_sample_answer_shape_and_determinism(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        profile = make_profile()
        task = make_task()
        a = simulator.sample_answer(profile, task, seed=11)
        b = simulator.sample_answer(profile, task, seed=11)
        assert a.responses == b.responses
        assert a.num_labels == task.num_labels
        assert a.worker_id == "w"
        assert a.task_id == "t"

    def test_sampled_accuracy_matches_probability(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        profile = make_profile(quality=0.9, lam=0.1)
        task = make_task()
        expected = simulator.correct_probability(profile, task)
        rng = np.random.default_rng(5)
        accuracies = [
            simulator.sample_answer(profile, task, seed=rng).accuracy_against(task.truth)
            for _ in range(300)
        ]
        assert np.mean(accuracies) == pytest.approx(expected, abs=0.05)

    def test_expected_answer_accuracy_alias(self, distance_model):
        simulator = AnswerSimulator(distance_model)
        profile = make_profile()
        task = make_task()
        assert simulator.expected_answer_accuracy(profile, task) == pytest.approx(
            simulator.correct_probability(profile, task)
        )


class TestQualityDrift:
    def test_zero_rate_is_stationary(self):
        from repro.crowd.answer_model import QualityDrift

        drift = QualityDrift()
        assert drift.effective_quality(0.9, 1e6) == 0.9

    def test_linear_fatigue_decays_to_floor(self):
        from repro.crowd.answer_model import QualityDrift

        drift = QualityDrift(rate=0.01, floor=0.2, mode="linear")
        assert drift.effective_quality(0.9, 0.0) == 0.9
        assert drift.effective_quality(0.9, 10.0) == pytest.approx(0.8)
        assert drift.effective_quality(0.9, 1000.0) == 0.2  # clamped at floor

    def test_practice_ramps_from_floor_to_base(self):
        from repro.crowd.answer_model import QualityDrift

        drift = QualityDrift(rate=0.01, floor=0.2, mode="practice")
        assert drift.effective_quality(0.9, 0.0) == pytest.approx(0.2)
        assert drift.effective_quality(0.9, 30.0) == pytest.approx(0.5)
        assert drift.effective_quality(0.9, 1000.0) == 0.9  # capped at base
        # A novice phase never *lowers* an already-poor worker below base.
        assert drift.effective_quality(0.1, 0.0) == pytest.approx(0.2)

    def test_cyclic_dips_and_recovers(self):
        from repro.crowd.answer_model import QualityDrift

        drift = QualityDrift(rate=0.2, floor=0.1, mode="cyclic", period=100.0)
        assert drift.effective_quality(0.9, 0.0) == pytest.approx(0.9)
        assert drift.effective_quality(0.9, 50.0) == pytest.approx(0.7)  # mid-dip
        assert drift.effective_quality(0.9, 100.0) == pytest.approx(0.9)

    def test_validation_raises_typed_errors(self):
        from repro.crowd.answer_model import AnswerModelError, QualityDrift

        with pytest.raises(AnswerModelError):
            QualityDrift(rate=-0.1)
        with pytest.raises(AnswerModelError):
            QualityDrift(rate=float("nan"))
        with pytest.raises(AnswerModelError):
            QualityDrift(floor=1.5)
        with pytest.raises(AnswerModelError):
            QualityDrift(mode="sawtooth")
        with pytest.raises(AnswerModelError):
            QualityDrift(period=0.0)
        with pytest.raises(AnswerModelError):
            QualityDrift(rate=0.1).effective_quality(0.9, float("inf"))
