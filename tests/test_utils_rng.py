"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, derive_seed, spawn_rng


class TestDefaultRng:
    def test_returns_generator_from_int(self):
        rng = default_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = default_rng(7).random(5)
        b = default_rng(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = default_rng(7).random(5)
        b = default_rng(8).random(5)
        assert not np.allclose(a, b)

    def test_passthrough_of_existing_generator(self):
        rng = np.random.default_rng(3)
        assert default_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(default_rng(1), 4)
        assert len(children) == 4

    def test_spawn_children_independent(self):
        children = spawn_rng(default_rng(1), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        a = spawn_rng(default_rng(5), 3)[2].random(4)
        b = spawn_rng(default_rng(5), 3)[2].random(4)
        assert np.allclose(a, b)

    def test_spawn_zero(self):
        assert spawn_rng(default_rng(1), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(default_rng(1), -1)


class TestDeriveSeed:
    def test_none_propagates(self):
        assert derive_seed(None, 3) is None

    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_different_salts_differ(self):
        assert derive_seed(10, 3) != derive_seed(10, 4)

    def test_different_seeds_differ(self):
        assert derive_seed(10, 3) != derive_seed(11, 3)

    def test_result_non_negative(self):
        assert derive_seed(123456, 789) >= 0
