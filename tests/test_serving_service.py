"""Tests for repro.serving.service (the end-to-end serving session)."""

import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.data.models import AnswerSet
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    IngestConfig,
    OnlineServingService,
    ServingConfig,
    SnapshotStore,
    load_snapshot,
)
from repro.framework.metrics import labelling_accuracy


def make_platform(small_dataset, worker_pool, distance_model, budget=60):
    return CrowdPlatform(
        dataset=small_dataset,
        worker_pool=worker_pool,
        budget=Budget(total=budget),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
        seed=7,
    )


def make_config(**overrides):
    defaults = dict(
        tasks_per_worker=2,
        ingest=IngestConfig(
            max_batch_answers=8, max_batch_delay=4.0, full_refresh_interval=40
        ),
        seed=13,
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class TestEndToEnd:
    def test_run_consumes_the_budget_and_reports(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model)
        service = OnlineServingService(platform, config=make_config())
        report = service.run()

        assert platform.budget.exhausted
        assert report.answers_ingested == 60
        assert report.answers_ingested == len(platform.answers)
        assert report.workers_served > 0
        assert report.frontend.requests >= report.workers_served
        assert report.ingest.batches >= 1
        assert report.snapshots_published == report.ingest.snapshots_published
        assert report.latest_version is not None
        assert service.snapshots.versions == sorted(service.snapshots.versions)
        assert 0.0 <= report.final_accuracy <= 1.0
        assert report.final_accuracy > 0.6  # low-noise simulated crowd
        assert report.frontend.p50_latency_ms <= report.frontend.p95_latency_ms
        summary = report.summary()
        assert "answers ingested: 60" in summary
        assert "p95" in summary

    def test_max_rounds_bounds_the_run(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model)
        service = OnlineServingService(platform, config=make_config())
        report = service.run(max_rounds=3)
        assert report.rounds <= 3
        assert not platform.budget.exhausted

    def test_every_strategy_runs(self, small_dataset, worker_pool, distance_model):
        for strategy in ("accopt", "uncertainty", "spatial", "random"):
            platform = make_platform(
                small_dataset, worker_pool, distance_model, budget=20
            )
            service = OnlineServingService(
                platform, config=make_config(strategy=strategy)
            )
            report = service.run()
            assert report.answers_ingested == 20, strategy

    def test_requires_an_arrival_process(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = CrowdPlatform(
            dataset=small_dataset,
            worker_pool=worker_pool,
            budget=Budget(total=10),
            distance_model=distance_model,
        )
        with pytest.raises(ValueError):
            OnlineServingService(platform)


class TestRestart:
    def test_resume_from_saved_snapshot_continues_versions(
        self, small_dataset, worker_pool, distance_model, tmp_path
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model, budget=30)
        service = OnlineServingService(platform, config=make_config())
        service.run()
        saved_version = service.snapshots.latest().version
        path = service.save_latest_snapshot(tmp_path / "snap.npz")
        assert path is not None

        restored = load_snapshot(path)
        fresh_platform = make_platform(
            small_dataset, worker_pool, distance_model, budget=20
        )
        resumed = OnlineServingService(
            fresh_platform, config=make_config(), initial_snapshot=restored
        )
        # The restored estimate is immediately live for the frontend...
        assert resumed.snapshots.latest().version == saved_version
        assert resumed.inference.is_fitted
        report = resumed.run()
        # ...and every later publish strictly increases the version.
        assert report.latest_version > saved_version
        assert resumed.snapshots.versions == sorted(resumed.snapshots.versions)
        # Restored entities survive re-publishing even if the new session has
        # not collected answers from them yet — no cold-start regression.
        final_store = resumed.snapshots.latest().store
        assert set(restored.store.worker_ids) <= set(final_store.worker_ids)
        assert set(restored.store.task_ids) <= set(final_store.task_ids)

    def test_save_without_snapshots_returns_none(
        self, small_dataset, worker_pool, distance_model, tmp_path
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model)
        service = OnlineServingService(platform, config=make_config())
        assert service.save_latest_snapshot(tmp_path / "snap.npz") is None


@pytest.mark.slow
class TestStreamReplay:
    """Replay a multi-hundred-answer stream and check serving tracks full EM."""

    def test_incremental_serving_tracks_batch_accuracy(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model, budget=90)
        service = OnlineServingService(
            platform,
            config=make_config(
                ingest=IngestConfig(
                    max_batch_answers=6, max_batch_delay=2.0, full_refresh_interval=30
                )
            ),
        )
        report = service.run()
        # The session may stop just short of the budget if a whole arrival
        # batch is saturated; whatever was simulated must have been ingested.
        assert report.answers_ingested == len(platform.answers)
        assert report.answers_ingested >= 60

        # Offline reference: one full EM fit over the identical answer log.
        offline = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        offline.fit(platform.answers)
        offline_accuracy = labelling_accuracy(
            offline.predict_all(), small_dataset.tasks
        )
        assert abs(report.final_accuracy - offline_accuracy) <= 0.1

    def test_replaying_a_stream_through_the_ingestor_alone(
        self, small_dataset, worker_pool, distance_model
    ):
        """Ingestor-only replay (the benchmark's code path, scaled down)."""
        simulator = AnswerSimulator(distance_model, noise=0.05)
        stream = []
        index = 0
        for profile in worker_pool:
            for task in small_dataset.tasks:
                stream.append(
                    AnswerEvent(
                        simulator.sample_answer(profile, task, seed=index),
                        time=0.05 * index,
                    )
                )
                index += 1
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=4)
        ingest = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(
                max_batch_answers=16, max_batch_delay=1.0, full_refresh_interval=48
            ),
        )
        for event in stream:
            ingest.submit(event)
        ingest.flush(full=True)
        assert ingest.stats.answers == len(stream)
        assert ingest.stats.full_refreshes >= 2
        assert ingest.stats.incremental_updates >= 1
        assert len(snapshots) == 4  # retention bound respected
        assert snapshots.versions == sorted(snapshots.versions)