"""Tests for repro.serving.journal (write-ahead log) and the checkpoint store."""

import zlib

import numpy as np
import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.serving import (
    AnswerEvent,
    AnswerJournal,
    CheckpointCorruptionError,
    CheckpointManager,
    CheckpointState,
    JournalCorruptionError,
    LiveStateError,
    RecoveryReport,
    ServingStateError,
    SnapshotIntegrityError,
)
from repro.serving.snapshots import SnapshotStore


def make_events(small_dataset, worker_pool, distance_model, count, with_payloads=False):
    simulator = AnswerSimulator(distance_model, noise=0.0)
    events = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if index >= count:
                return events
            events.append(
                AnswerEvent(
                    simulator.sample_answer(profile, task, seed=1000 + index),
                    time=0.1 * index,
                    worker=profile.worker if with_payloads else None,
                    task=task if with_payloads else None,
                )
            )
            index += 1
    return events


class TestErrorHierarchy:
    def test_typed_errors_share_a_root(self):
        for err in (
            JournalCorruptionError,
            CheckpointCorruptionError,
            SnapshotIntegrityError,
            LiveStateError,
        ):
            assert issubclass(err, ServingStateError)
            # Callers that guarded with bare RuntimeError keep working.
            assert issubclass(err, RuntimeError)


class TestAppendReplay:
    def test_round_trip_preserves_events(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(
            small_dataset, worker_pool, distance_model, 10, with_payloads=True
        )
        journal = AnswerJournal(tmp_path)
        seqs = [journal.append(event) for event in events]
        assert seqs == list(range(1, 11))
        assert journal.last_seq == 10

        replayed = list(journal.replay())
        assert [seq for seq, _ in replayed] == seqs
        for original, (_, decoded) in zip(events, replayed):
            assert decoded.answer == original.answer
            assert decoded.time == original.time
            assert decoded.worker == original.worker
            assert decoded.task == original.task
        journal.close()

    def test_replay_after_skips_covered_prefix(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 8)
        journal = AnswerJournal(tmp_path)
        for event in events:
            journal.append(event)
        tail = list(journal.replay(after=5))
        assert [seq for seq, _ in tail] == [6, 7, 8]
        journal.close()

    def test_reopen_continues_the_sequence(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 6)
        journal = AnswerJournal(tmp_path)
        for event in events[:4]:
            journal.append(event)
        journal.close()

        reopened = AnswerJournal(tmp_path)
        assert reopened.last_seq == 4
        assert [reopened.append(event) for event in events[4:]] == [5, 6]
        assert len(list(reopened.replay())) == 6
        reopened.close()


class TestSegments:
    def test_rotation_and_truncate_covered(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 10)
        journal = AnswerJournal(tmp_path, max_segment_records=3)
        for event in events:
            journal.append(event)
        assert len(journal.segment_paths()) == 4  # 3+3+3+1
        assert journal.stats.segments_created == 4

        # A checkpoint covering seq 7 frees the first two segments (last seqs
        # 3 and 6) but not the third (last seq 9 > 7) or the open tail.
        removed = journal.truncate_covered(7)
        assert removed == 2
        assert journal.stats.segments_truncated == 2
        remaining = journal.segment_paths()
        assert len(remaining) == 2
        # Replay over the remaining segments still yields the uncovered tail.
        assert [seq for seq, _ in journal.replay(after=7)] == [8, 9, 10]
        journal.close()

    def test_truncate_never_removes_the_open_segment(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 4)
        journal = AnswerJournal(tmp_path, max_segment_records=100)
        for event in events:
            journal.append(event)
        assert journal.truncate_covered(4) == 0
        assert len(journal.segment_paths()) == 1
        journal.close()


class TestCorruption:
    def test_torn_tail_is_dropped_on_reopen(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        from repro.serving.faults import tear_journal_tail

        events = make_events(small_dataset, worker_pool, distance_model, 5)
        journal = AnswerJournal(tmp_path)
        for event in events:
            journal.append(event)
        journal.close()

        segment = journal.segment_paths()[-1]
        assert tear_journal_tail(segment, drop_bytes=7) == 7

        reopened = AnswerJournal(tmp_path)
        assert reopened.last_seq == 4  # the torn final record is gone
        assert reopened.stats.torn_records_dropped == 1
        assert [seq for seq, _ in reopened.replay()] == [1, 2, 3, 4]
        # The truncation is durable: appending continues from the torn point.
        assert reopened.append(events[4]) == 5
        reopened.close()

    def test_mid_file_corruption_refuses_to_open(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 5)
        journal = AnswerJournal(tmp_path)
        for event in events:
            journal.append(event)
        journal.close()

        segment = journal.segment_paths()[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef" + lines[1][8:]  # break record 2's checksum
        segment.write_bytes(b"".join(lines))

        with pytest.raises(JournalCorruptionError):
            AnswerJournal(tmp_path)

    def test_checksum_actually_covers_the_payload(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        events = make_events(small_dataset, worker_pool, distance_model, 1)
        journal = AnswerJournal(tmp_path)
        journal.append(events[0])
        journal.close()
        segment = journal.segment_paths()[0]
        raw = segment.read_bytes()
        crc_hex, payload = raw.split(b" ", 1)
        assert int(crc_hex, 16) == zlib.crc32(payload.rstrip(b"\n"))


class TestCheckpointManager:
    def _state(self, small_dataset, worker_pool, distance_model, seq=7):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        events = make_events(small_dataset, worker_pool, distance_model, 12)
        answers = [event.answer for event in events]
        from repro.data.models import AnswerSet

        inference.fit(AnswerSet(answers))
        task_ids = list(inference.tasks)
        store = inference.parameters.to_array_store(
            list(inference.workers),
            task_ids,
            [inference.tasks[task_id].num_labels for task_id in task_ids],
        )
        return CheckpointState(
            store=store,
            journal_seq=seq,
            snapshot_version=3,
            published_at=12.5,
            answers=answers,
            workers=list(inference.workers.values()),
            tasks=list(inference.tasks.values()),
            answers_since_full_refresh=5,
            counters={"answers": 12, "update_seconds": 0.25},
        )

    def test_save_load_round_trip(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        state = self._state(small_dataset, worker_pool, distance_model)
        manager = CheckpointManager(tmp_path)
        path = manager.save(state)
        assert path.exists() and path.with_suffix(".npz.crc").exists()

        loaded, skipped = CheckpointManager(tmp_path).load_latest()
        assert skipped == 0
        assert loaded.journal_seq == 7
        assert loaded.snapshot_version == 3
        assert loaded.published_at == 12.5
        assert loaded.answers == state.answers
        assert loaded.workers == state.workers
        assert loaded.tasks == state.tasks
        assert loaded.answers_since_full_refresh == 5
        assert loaded.counters["answers"] == 12
        assert loaded.counters["update_seconds"] == pytest.approx(0.25)
        assert state.store.max_difference(loaded.store) == 0.0
        np.testing.assert_array_equal(state.store.p_qualified, loaded.store.p_qualified)

    def test_corrupt_checkpoint_is_skipped_for_an_older_one(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        from repro.serving.faults import corrupt_file

        manager = CheckpointManager(tmp_path)
        manager.save(self._state(small_dataset, worker_pool, distance_model, seq=5))
        newest = manager.save(
            self._state(small_dataset, worker_pool, distance_model, seq=9)
        )
        corrupt_file(newest)

        with pytest.raises(CheckpointCorruptionError):
            manager.load(newest)
        loaded, skipped = manager.load_latest()
        assert skipped == 1
        assert loaded.journal_seq == 5

    def test_missing_crc_sidecar_is_corruption(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        manager = CheckpointManager(tmp_path)
        path = manager.save(self._state(small_dataset, worker_pool, distance_model))
        path.with_suffix(".npz.crc").unlink()
        with pytest.raises(CheckpointCorruptionError):
            manager.load(path)
        loaded, skipped = manager.load_latest()
        assert loaded is None and skipped == 1

    def test_prune_keeps_the_newest(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        manager = CheckpointManager(tmp_path, keep=2)
        for seq in (3, 6, 9, 12):
            manager.save(
                self._state(small_dataset, worker_pool, distance_model, seq=seq)
            )
        remaining = manager.checkpoint_paths()
        assert [p.name for p in remaining] == [
            "ckpt-0000000009.npz",
            "ckpt-0000000012.npz",
        ]

    def test_empty_directory_is_a_cold_start(self, tmp_path):
        loaded, skipped = CheckpointManager(tmp_path / "none").load_latest()
        assert loaded is None and skipped == 0


class TestRecoveryReport:
    def test_summaries(self):
        cold = RecoveryReport(cold_start=True, replayed_events=4, torn_tail=True)
        assert "cold start" in cold.summary()
        assert "torn journal tail" in cold.summary()
        warm = RecoveryReport(
            checkpoint_seq=40,
            checkpoint_version=7,
            checkpoint_answers=40,
            replayed_events=3,
            corrupt_checkpoints_skipped=1,
        )
        text = warm.summary()
        assert "seq 40" in text and "v7" in text and "replayed 3" in text
        assert "1 corrupt" in text
