"""Tests for repro.baselines.dawid_skene."""

import numpy as np
import pytest

from repro.baselines.dawid_skene import DawidSkeneConfig, DawidSkeneInference
from repro.data.models import Answer, AnswerSet


class TestConfig:
    def test_defaults_valid(self):
        config = DawidSkeneConfig()
        assert config.engine == "vectorized"

    def test_validation(self):
        with pytest.raises(ValueError):
            DawidSkeneConfig(max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkeneConfig(convergence_threshold=-1)
        with pytest.raises(ValueError):
            DawidSkeneConfig(smoothing=-0.1)
        with pytest.raises(ValueError):
            DawidSkeneConfig(engine="gpu")


class TestEngineEquivalence:
    """The vectorized flat-index engine against the per-observation oracle."""

    def _fit_both(self, tasks, answers, **kwargs):
        vectorized = DawidSkeneInference(
            tasks, DawidSkeneConfig(engine="vectorized", **kwargs)
        ).fit(answers)
        reference = DawidSkeneInference(
            tasks, DawidSkeneConfig(engine="reference", **kwargs)
        ).fit(answers)
        return vectorized, reference

    def test_label_probabilities_match_oracle(self, small_dataset, collected_answers):
        vectorized, reference = self._fit_both(small_dataset.tasks, collected_answers)
        for task in small_dataset.tasks:
            assert np.abs(
                vectorized.label_probabilities(task.task_id)
                - reference.label_probabilities(task.task_id)
            ).max() <= 1e-9

    def test_confusion_matrices_match_oracle(self, small_dataset, collected_answers):
        vectorized, reference = self._fit_both(small_dataset.tasks, collected_answers)
        for worker_id in collected_answers.worker_ids():
            assert np.abs(
                vectorized.worker_confusion(worker_id)
                - reference.worker_confusion(worker_id)
            ).max() <= 1e-9

    def test_iteration_traces_match_oracle(self, small_dataset, collected_answers):
        vectorized, reference = self._fit_both(
            small_dataset.tasks, collected_answers, max_iterations=7,
            convergence_threshold=0.0,
        )
        assert vectorized.last_result.iterations == reference.last_result.iterations
        assert vectorized.last_result.converged == reference.last_result.converged
        assert vectorized.last_result.convergence_trace == pytest.approx(
            reference.last_result.convergence_trace, abs=1e-9
        )

    def test_empty_answer_set_matches_oracle(self, small_dataset):
        vectorized, reference = self._fit_both(small_dataset.tasks, AnswerSet())
        task_id = small_dataset.tasks[0].task_id
        assert np.allclose(vectorized.label_probabilities(task_id), 0.5)
        assert np.allclose(reference.label_probabilities(task_id), 0.5)
        assert vectorized.last_result.iterations == reference.last_result.iterations


class TestDawidSkene:
    def test_unfitted_query_raises(self, small_dataset):
        model = DawidSkeneInference(small_dataset.tasks)
        with pytest.raises(RuntimeError):
            model.label_probabilities(small_dataset.tasks[0].task_id)

    def test_fit_produces_valid_probabilities(self, small_dataset, collected_answers):
        model = DawidSkeneInference(small_dataset.tasks).fit(collected_answers)
        for task in small_dataset.tasks:
            probs = model.label_probabilities(task.task_id)
            assert probs.shape == (task.num_labels,)
            assert np.all(probs >= 0.0)
            assert np.all(probs <= 1.0)

    def test_reports_convergence_diagnostics(self, small_dataset, collected_answers):
        model = DawidSkeneInference(small_dataset.tasks).fit(collected_answers)
        assert model.last_result is not None
        assert model.last_result.iterations >= 1
        assert len(model.last_result.convergence_trace) == model.last_result.iterations

    def test_confident_majority_wins(self, small_dataset):
        """Three identical honest workers must dominate one contrarian."""
        task = small_dataset.tasks[0]
        n = task.num_labels
        honest = tuple(task.truth)
        contrarian = tuple(1 - v for v in task.truth)
        answers = AnswerSet()
        for task_obj in small_dataset.tasks:
            truth = tuple(task_obj.truth)
            flipped = tuple(1 - v for v in truth)
            for worker_id in ("w1", "w2", "w3"):
                answers.add(Answer(worker_id, task_obj.task_id, truth))
            answers.add(Answer("w4", task_obj.task_id, flipped))
        model = DawidSkeneInference(small_dataset.tasks).fit(answers)
        assert np.all(model.predict(task.task_id) == np.asarray(honest))
        assert not np.all(model.predict(task.task_id) == np.asarray(contrarian))

    def test_worker_quality_separates_honest_from_adversarial(self, small_dataset):
        answers = AnswerSet()
        for task in small_dataset.tasks:
            truth = tuple(task.truth)
            flipped = tuple(1 - v for v in truth)
            for worker_id in ("good1", "good2", "good3"):
                answers.add(Answer(worker_id, task.task_id, truth))
            answers.add(Answer("bad", task.task_id, flipped))
        model = DawidSkeneInference(small_dataset.tasks).fit(answers)
        assert model.worker_accuracy("good1") > model.worker_accuracy("bad")
        matrix = model.worker_confusion("good1")
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_unanswered_labels_default_to_half(self, small_dataset):
        task = small_dataset.tasks[0]
        answers = AnswerSet([Answer("w1", task.task_id, tuple(task.truth))])
        model = DawidSkeneInference(small_dataset.tasks).fit(answers)
        other = small_dataset.tasks[1]
        assert np.allclose(model.label_probabilities(other.task_id), 0.5)

    def test_unknown_task_in_answers_rejected(self, small_dataset):
        answers = AnswerSet([Answer("w1", "ghost", (1, 0, 1, 0))])
        with pytest.raises(KeyError):
            DawidSkeneInference(small_dataset.tasks).fit(answers)

    def test_wrong_label_count_rejected(self, small_dataset):
        task = small_dataset.tasks[0]
        answers = AnswerSet([Answer("w1", task.task_id, (1,))])
        with pytest.raises(ValueError):
            DawidSkeneInference(small_dataset.tasks).fit(answers)

    def test_accuracy_beats_chance_on_simulated_crowd(self, small_dataset, collected_answers):
        from repro.framework.metrics import labelling_accuracy

        model = DawidSkeneInference(small_dataset.tasks).fit(collected_answers)
        assert labelling_accuracy(model.predict_all(), small_dataset.tasks) > 0.55

    def test_iteration_cap_respected(self, small_dataset, collected_answers):
        config = DawidSkeneConfig(max_iterations=2, convergence_threshold=0.0)
        model = DawidSkeneInference(small_dataset.tasks, config=config).fit(collected_answers)
        assert model.last_result.iterations == 2
        assert not model.last_result.converged
