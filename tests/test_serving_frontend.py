"""Tests for repro.serving.frontend (live assignment against snapshots)."""

import pytest

from repro.core.inference import LocationAwareInference
from repro.data.models import AnswerSet
from repro.serving.frontend import NO_SNAPSHOT, AssignmentFrontend
from repro.serving.snapshots import SnapshotStore


@pytest.fixture()
def snapshot_setup(small_dataset, worker_pool, distance_model, collected_answers):
    """A snapshot store primed with one real fit, plus the ingredients."""
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    registry = small_dataset.task_index
    task_ids = collected_answers.task_ids()
    store = model.parameters.to_array_store(
        collected_answers.worker_ids(),
        task_ids,
        [registry[task_id].num_labels for task_id in task_ids],
    )
    snapshots = SnapshotStore()
    return snapshots, store


def make_frontend(small_dataset, worker_pool, distance_model, snapshots, **kwargs):
    return AssignmentFrontend(
        small_dataset.tasks,
        worker_pool.workers,
        distance_model,
        snapshots,
        **kwargs,
    )


class TestColdStart:
    def test_assigns_on_priors_before_any_snapshot(
        self, small_dataset, worker_pool, distance_model
    ):
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore()
        )
        worker_id = worker_pool.worker_ids[0]
        response = frontend.assign(worker_id, 2, AnswerSet())
        assert len(response.task_ids) == 2
        assert response.snapshot_version == NO_SNAPSHOT
        assert frontend.seen_version is None

    def test_unknown_strategy_rejected(
        self, small_dataset, worker_pool, distance_model
    ):
        with pytest.raises(ValueError):
            make_frontend(
                small_dataset, worker_pool, distance_model, SnapshotStore(),
                strategy="greedy-est",
            )


class TestSnapshotTracking:
    def test_requests_carry_latest_version(
        self, small_dataset, worker_pool, distance_model, snapshot_setup
    ):
        snapshots, store = snapshot_setup
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, snapshots
        )
        snapshots.publish(store)
        response = frontend.assign(worker_pool.worker_ids[0], 2, AnswerSet())
        assert response.snapshot_version == 0
        snapshots.publish(store)
        response = frontend.assign(worker_pool.worker_ids[1], 2, AnswerSet())
        assert response.snapshot_version == 1

    def test_parameters_refresh_once_per_version(
        self, small_dataset, worker_pool, distance_model, snapshot_setup
    ):
        snapshots, store = snapshot_setup
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, snapshots
        )
        snapshots.publish(store)
        for worker_id in worker_pool.worker_ids[:3]:
            frontend.assign(worker_id, 1, AnswerSet())
        assert frontend.stats.parameter_refreshes == 1  # one version, one push
        snapshots.publish(store)
        frontend.assign(worker_pool.worker_ids[3], 1, AnswerSet())
        assert frontend.stats.parameter_refreshes == 2
        assert frontend.seen_version == 1

    def test_strategies_all_serve(self, small_dataset, worker_pool, distance_model, snapshot_setup):
        snapshots, store = snapshot_setup
        snapshots.publish(store)
        for strategy in ("accopt", "uncertainty", "spatial", "random"):
            frontend = make_frontend(
                small_dataset, worker_pool, distance_model, snapshots,
                strategy=strategy, seed=11,
            )
            response = frontend.assign(worker_pool.worker_ids[0], 2, AnswerSet())
            assert len(response.task_ids) == 2, strategy


class TestStats:
    def test_latency_and_counters_recorded(
        self, small_dataset, worker_pool, distance_model, snapshot_setup
    ):
        snapshots, store = snapshot_setup
        snapshots.publish(store)
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, snapshots
        )
        for worker_id in worker_pool.worker_ids[:4]:
            frontend.assign(worker_id, 2, AnswerSet())
        stats = frontend.stats
        assert stats.requests == 4
        assert stats.tasks_assigned == 8
        assert len(stats.latencies_ms) == 4
        assert all(latency >= 0.0 for latency in stats.latencies_ms)
        assert stats.p50_latency_ms <= stats.p95_latency_ms

    def test_empty_percentiles_are_zero(
        self, small_dataset, worker_pool, distance_model
    ):
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore()
        )
        assert frontend.stats.p50_latency_ms == 0.0
        assert frontend.stats.p95_latency_ms == 0.0

    def test_snapshot_age_measures_the_served_snapshot(
        self, small_dataset, worker_pool, distance_model, snapshot_setup
    ):
        """Age is the served snapshot's own published_wall gap, clamped >= 0 —
        not the distance to whatever newer version exists in the store."""
        snapshots, store = snapshot_setup
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, snapshots
        )
        # No snapshot yet: prior-only responses report zero age.
        response = frontend.assign(worker_pool.worker_ids[0], 1, AnswerSet())
        assert response.snapshot_age_s == 0.0
        snapshot = snapshots.publish(store)
        import time as time_module

        before = time_module.monotonic() - snapshot.published_wall
        response = frontend.assign(worker_pool.worker_ids[1], 1, AnswerSet())
        after = time_module.monotonic() - snapshot.published_wall
        assert before <= response.snapshot_age_s <= after
        assert response.snapshot_age_s >= 0.0

    def test_saturated_worker_gets_empty_response(
        self, small_dataset, worker_pool, distance_model, collected_answers,
        snapshot_setup,
    ):
        snapshots, store = snapshot_setup
        snapshots.publish(store)
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, snapshots
        )
        # Build an answer log where one worker has answered every task.
        answers = collected_answers.copy()
        worker_id = worker_pool.worker_ids[0]
        from repro.crowd.answer_model import AnswerSimulator

        simulator = AnswerSimulator(distance_model, noise=0.0)
        profile = worker_pool.profile(worker_id)
        for task in small_dataset.tasks:
            if answers.get(worker_id, task.task_id) is None:
                answers.add(simulator.sample_answer(profile, task, seed=5))
        response = frontend.assign(worker_id, 2, answers)
        assert response.task_ids == ()
        assert frontend.stats.empty_responses == 1


class TestLatencyReservoir:
    def test_invalid_capacity_rejected(self):
        from repro.serving.frontend import LatencyReservoir

        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)

    def test_empty_reservoir_reports_zero(self):
        from repro.serving.frontend import LatencyReservoir

        reservoir = LatencyReservoir(capacity=4)
        assert len(reservoir) == 0
        assert reservoir.count == 0
        assert not reservoir.saturated
        assert reservoir.percentile(50) == 0.0
        assert reservoir.percentile(99) == 0.0

    def test_single_sample_is_every_percentile(self):
        from repro.serving.frontend import LatencyReservoir

        reservoir = LatencyReservoir(capacity=4)
        reservoir.add(3.5)
        for percentile in (0, 50, 90, 99, 100):
            assert reservoir.percentile(percentile) == 3.5
        assert len(reservoir) == 1
        assert not reservoir.saturated

    def test_exact_below_capacity(self):
        from repro.serving.frontend import LatencyReservoir

        reservoir = LatencyReservoir(capacity=100)
        values = [float(i) for i in range(50)]
        for value in values:
            reservoir.add(value)
        assert sorted(reservoir.samples) == values
        assert not reservoir.saturated
        assert reservoir.percentile(0) == 0.0
        assert reservoir.percentile(100) == 49.0

    def test_at_capacity_retention_is_bounded(self):
        from repro.serving.frontend import LatencyReservoir

        reservoir = LatencyReservoir(capacity=8, seed=123)
        for i in range(200):
            reservoir.add(float(i))
        assert len(reservoir) == 8
        assert reservoir.count == 200
        assert reservoir.saturated
        # Every retained sample came from the stream.
        assert all(0.0 <= sample <= 199.0 for sample in reservoir.samples)

    def test_percentiles_are_monotonic(self):
        from repro.serving.frontend import LatencyReservoir

        reservoir = LatencyReservoir(capacity=64, seed=7)
        for i in range(1000):
            reservoir.add((i * 37 % 101) / 7.0)
        levels = (1, 25, 50, 75, 90, 99)
        reported = [reservoir.percentile(level) for level in levels]
        assert reported == sorted(reported)


# ------------------------------------------------------------ trust probes
def nearest_unanswered_task(small_dataset, worker_pool, distance_model, worker_id, answered=()):
    worker = next(w for w in worker_pool.workers if w.worker_id == worker_id)
    best_id, best_distance = None, float("inf")
    for task in small_dataset.tasks:
        if task.task_id in answered:
            continue
        distance = distance_model.worker_task_distance(worker.locations, task.location)
        if distance < best_distance:
            best_id, best_distance = task.task_id, distance
    return best_id


class TestTrustProbes:
    def test_probe_serves_nearest_unanswered_task(
        self, small_dataset, worker_pool, distance_model
    ):
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore(),
            probe_interval=1,
        )
        worker_id = worker_pool.worker_ids[0]
        response = frontend.assign(worker_id, 2, AnswerSet())
        nearest = nearest_unanswered_task(
            small_dataset, worker_pool, distance_model, worker_id
        )
        assert nearest in response.task_ids

    def test_probe_swap_and_cadence(
        self, small_dataset, worker_pool, distance_model
    ):
        from repro.crowd.answer_model import AnswerSimulator

        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore(),
            probe_interval=2,
        )
        profile = next(iter(worker_pool))
        worker_id = profile.worker_id
        nearest = nearest_unanswered_task(
            small_dataset, worker_pool, distance_model, worker_id
        )
        decoys = tuple(
            t.task_id for t in small_dataset.tasks if t.task_id != nearest
        )[:2]

        # Request 0 of the worker's probe cycle: the last pick is swapped for
        # the nearest unanswered task and the probe is counted.
        probed = frontend._maybe_probe(worker_id, 2, decoys, AnswerSet())
        assert probed == decoys[:1] + (nearest,)
        assert frontend.stats.probes == 1

        # After h answered tasks the cadence counter is odd: no probe fires.
        simulator = AnswerSimulator(distance_model, noise=0.0)
        answers = AnswerSet()
        for index in range(2):
            answers.add(
                simulator.sample_answer(
                    profile, small_dataset.tasks[index], seed=900 + index
                )
            )
        unprobed = frontend._maybe_probe(worker_id, 2, decoys, answers)
        assert unprobed == decoys
        assert frontend.stats.probes == 1

    def test_probes_disabled_by_default(
        self, small_dataset, worker_pool, distance_model
    ):
        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore()
        )
        frontend.assign(worker_pool.worker_ids[0], 2, AnswerSet())
        assert frontend.stats.probes == 0


class TestReputationAtTheFrontend:
    def test_quarantined_worker_is_refused(
        self, small_dataset, worker_pool, distance_model
    ):
        from repro.serving import ReputationConfig, ReputationTracker

        tracker = ReputationTracker(
            ReputationConfig(min_answers=1, demote_patience=1)
        )
        worker_id = worker_pool.worker_ids[0]
        tracker.evaluate([worker_id], [0.01], {worker_id: 50})
        assert tracker.is_quarantined(worker_id)

        frontend = make_frontend(
            small_dataset, worker_pool, distance_model, SnapshotStore(),
            reputation=tracker,
        )
        response = frontend.assign(worker_id, 2, AnswerSet())
        assert response.task_ids == ()
        assert frontend.stats.blocked_requests == 1
        # Everyone else keeps being served.
        other = worker_pool.worker_ids[1]
        assert frontend.assign(other, 2, AnswerSet()).task_ids
        assert frontend.stats.blocked_requests == 1
