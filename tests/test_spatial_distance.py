"""Tests for repro.spatial.distance."""

import math

import numpy as np
import pytest

from repro.spatial.distance import (
    DistanceModel,
    max_pairwise_distance,
    normalised_distance_matrix,
)
from repro.spatial.geometry import GeoPoint


class TestMaxPairwiseDistance:
    def test_two_points(self):
        assert max_pairwise_distance([GeoPoint(0, 0), GeoPoint(3, 4)]) == pytest.approx(5.0)

    def test_takes_maximum(self):
        points = [GeoPoint(0, 0), GeoPoint(1, 0), GeoPoint(10, 0)]
        assert max_pairwise_distance(points) == pytest.approx(10.0)

    def test_single_point_is_zero(self):
        assert max_pairwise_distance([GeoPoint(5, 5)]) == 0.0

    def test_empty_is_zero(self):
        assert max_pairwise_distance([]) == 0.0

    def test_haversine_metric(self):
        points = [GeoPoint(116.4, 39.9), GeoPoint(121.5, 31.2)]
        assert max_pairwise_distance(points, metric="haversine") > 1000.0

    def test_chunked_matches_unchunked(self):
        """The chunked broadcast must agree with a brute-force double loop."""
        from repro.spatial.geometry import euclidean_distance, haversine_distance

        rng = np.random.default_rng(4)
        points = [
            GeoPoint(float(x), float(y))
            for x, y in zip(rng.uniform(100, 120, 37), rng.uniform(20, 45, 37))
        ]
        for metric, scalar_fn in (
            ("euclidean", euclidean_distance),
            ("haversine", haversine_distance),
        ):
            brute = max(
                scalar_fn(a, b) for i, a in enumerate(points) for b in points[i + 1 :]
            )
            assert max_pairwise_distance(points, metric=metric) == pytest.approx(
                brute, rel=1e-12
            )
            assert max_pairwise_distance(
                points, metric=metric, chunk_size=5
            ) == pytest.approx(brute, rel=1e-12)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            max_pairwise_distance([GeoPoint(0, 0), GeoPoint(1, 1)], chunk_size=0)


class TestDistanceModel:
    def test_invalid_max_distance(self):
        with pytest.raises(ValueError):
            DistanceModel(max_distance=0.0)
        with pytest.raises(ValueError):
            DistanceModel(max_distance=-1.0)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            DistanceModel(max_distance=1.0, metric="manhattan")  # type: ignore[arg-type]

    def test_normalised_in_unit_interval(self):
        model = DistanceModel(max_distance=10.0)
        assert model.normalised(GeoPoint(0, 0), GeoPoint(3, 4)) == pytest.approx(0.5)

    def test_normalised_clipped_at_one(self):
        model = DistanceModel(max_distance=1.0)
        assert model.normalised(GeoPoint(0, 0), GeoPoint(30, 40)) == 1.0

    def test_worker_task_distance_uses_minimum_location(self):
        model = DistanceModel(max_distance=10.0)
        locations = [GeoPoint(0, 0), GeoPoint(9, 0)]
        # The task at (10, 0) is 1 away from the second location.
        assert model.worker_task_distance(locations, GeoPoint(10, 0)) == pytest.approx(0.1)

    def test_worker_task_distance_empty_locations_raises(self):
        model = DistanceModel(max_distance=10.0)
        with pytest.raises(ValueError):
            model.worker_task_distance([], GeoPoint(0, 0))

    def test_from_pois(self):
        pois = [GeoPoint(0, 0), GeoPoint(0, 4), GeoPoint(3, 0)]
        model = DistanceModel.from_pois(pois)
        assert model.max_distance == pytest.approx(5.0)

    def test_from_pois_degenerate_raises(self):
        with pytest.raises(ValueError):
            DistanceModel.from_pois([GeoPoint(1, 1), GeoPoint(1, 1)])

    def test_cache_cleared(self):
        model = DistanceModel(max_distance=5.0)
        model.raw_distance(GeoPoint(0, 0), GeoPoint(1, 1))
        assert len(model._cache) > 0
        model.clear_cache()
        assert len(model._cache) == 0

    def test_raw_distance_symmetric_via_cache(self):
        model = DistanceModel(max_distance=5.0)
        d1 = model.raw_distance(GeoPoint(0, 0), GeoPoint(1, 1))
        d2 = model.raw_distance(GeoPoint(1, 1), GeoPoint(0, 0))
        assert d1 == d2


class TestWorkerTaskDistancesBatch:
    def test_matches_scalar_path(self):
        rng = np.random.default_rng(17)
        model = DistanceModel(max_distance=8.0)
        worker_locations = []
        task_locations = []
        for _ in range(50):
            count = int(rng.integers(1, 4))
            worker_locations.append(
                tuple(
                    GeoPoint(float(x), float(y))
                    for x, y in zip(rng.uniform(0, 10, count), rng.uniform(0, 10, count))
                )
            )
            task_locations.append(
                GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            )
        batch = model.worker_task_distances(worker_locations, task_locations)
        scalar = np.array(
            [
                model.worker_task_distance(locations, task)
                for locations, task in zip(worker_locations, task_locations)
            ]
        )
        assert batch.shape == (50,)
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-15)

    def test_haversine_matches_scalar_path(self):
        model = DistanceModel(max_distance=500.0, metric="haversine")
        worker_locations = [
            (GeoPoint(116.4, 39.9), GeoPoint(117.2, 39.1)),
            (GeoPoint(121.5, 31.2),),
        ]
        task_locations = [GeoPoint(116.5, 40.0), GeoPoint(120.2, 30.3)]
        batch = model.worker_task_distances(worker_locations, task_locations)
        scalar = [
            model.worker_task_distance(locations, task)
            for locations, task in zip(worker_locations, task_locations)
        ]
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-12)

    def test_mismatched_lengths_rejected(self):
        model = DistanceModel(max_distance=1.0)
        with pytest.raises(ValueError):
            model.worker_task_distances([[GeoPoint(0, 0)]], [])

    def test_empty_worker_locations_rejected(self):
        model = DistanceModel(max_distance=1.0)
        with pytest.raises(ValueError):
            model.worker_task_distances([[]], [GeoPoint(0, 0)])

    def test_empty_batch(self):
        model = DistanceModel(max_distance=1.0)
        assert model.worker_task_distances([], []).shape == (0,)

    def test_clipped_at_one(self):
        model = DistanceModel(max_distance=1.0)
        batch = model.worker_task_distances([[GeoPoint(0, 0)]], [GeoPoint(30, 40)])
        assert batch[0] == 1.0


class TestNormalisedDistanceMatrix:
    def test_shape_and_values(self):
        model = DistanceModel(max_distance=10.0)
        workers = [[GeoPoint(0, 0)], [GeoPoint(10, 0), GeoPoint(0, 10)]]
        tasks = [GeoPoint(0, 0), GeoPoint(0, 10)]
        matrix = normalised_distance_matrix(workers, tasks, model)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 0.0
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 1] == 0.0

    def test_values_in_unit_interval(self):
        model = DistanceModel(max_distance=3.0)
        workers = [[GeoPoint(0, 0)]]
        tasks = [GeoPoint(5, 5), GeoPoint(1, 1)]
        matrix = normalised_distance_matrix(workers, tasks, model)
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= 1.0)

    def test_matches_scalar_path(self):
        rng = np.random.default_rng(23)
        model = DistanceModel(max_distance=7.5)
        workers = [
            [
                GeoPoint(float(x), float(y))
                for x, y in zip(
                    rng.uniform(0, 10, int(n)), rng.uniform(0, 10, int(n))
                )
            ]
            for n in rng.integers(1, 4, size=9)
        ]
        tasks = [
            GeoPoint(float(x), float(y))
            for x, y in zip(rng.uniform(0, 10, 11), rng.uniform(0, 10, 11))
        ]
        matrix = normalised_distance_matrix(workers, tasks, model)
        for i, locations in enumerate(workers):
            for j, task in enumerate(tasks):
                assert matrix[i, j] == pytest.approx(
                    model.worker_task_distance(locations, task), abs=1e-15
                )
        # Chunking across worker blocks must not change anything.
        chunked = normalised_distance_matrix(workers, tasks, model, chunk_size=2)
        np.testing.assert_array_equal(chunked, matrix)

    def test_empty_matrix(self):
        model = DistanceModel(max_distance=1.0)
        assert normalised_distance_matrix([], [GeoPoint(0, 0)], model).shape == (0, 1)
        assert normalised_distance_matrix([[GeoPoint(0, 0)]], [], model).shape == (1, 0)


class TestHullDiameter:
    """The convex-hull diameter path vs the brute-force O(N^2) oracle."""

    def _random_points(self, rng, count, spread=10.0):
        return [
            GeoPoint(float(rng.uniform(0, spread)), float(rng.uniform(0, spread)))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("metric", ["euclidean", "haversine"])
    def test_hull_matches_bruteforce(self, seed, metric):
        rng = np.random.default_rng(seed)
        points = self._random_points(rng, 300)
        assert max_pairwise_distance(
            points, metric=metric, method="hull"
        ) == pytest.approx(
            max_pairwise_distance(points, metric=metric, method="bruteforce"),
            rel=1e-12,
        )

    def test_auto_switches_to_hull_above_cutoff(self):
        from repro.spatial.distance import _HULL_CUTOFF

        rng = np.random.default_rng(5)
        points = self._random_points(rng, _HULL_CUTOFF + 50)
        assert max_pairwise_distance(points) == pytest.approx(
            max_pairwise_distance(points, method="bruteforce"), rel=1e-12
        )

    def test_collinear_points(self):
        points = [GeoPoint(float(i), float(i)) for i in range(50)]
        assert max_pairwise_distance(points, method="hull") == pytest.approx(
            49.0 * math.sqrt(2.0)
        )

    def test_duplicate_points(self):
        points = [GeoPoint(1.0, 2.0)] * 20 + [GeoPoint(4.0, 6.0)] * 20
        assert max_pairwise_distance(points, method="hull") == pytest.approx(5.0)

    def test_degenerate_small_inputs(self):
        assert max_pairwise_distance([], method="hull") == 0.0
        assert max_pairwise_distance([GeoPoint(3, 3)], method="hull") == 0.0
        assert max_pairwise_distance(
            [GeoPoint(0, 0), GeoPoint(3, 4)], method="hull"
        ) == pytest.approx(5.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            max_pairwise_distance([GeoPoint(0, 0)], method="voronoi")
