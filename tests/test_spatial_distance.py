"""Tests for repro.spatial.distance."""

import numpy as np
import pytest

from repro.spatial.distance import (
    DistanceModel,
    max_pairwise_distance,
    normalised_distance_matrix,
)
from repro.spatial.geometry import GeoPoint


class TestMaxPairwiseDistance:
    def test_two_points(self):
        assert max_pairwise_distance([GeoPoint(0, 0), GeoPoint(3, 4)]) == pytest.approx(5.0)

    def test_takes_maximum(self):
        points = [GeoPoint(0, 0), GeoPoint(1, 0), GeoPoint(10, 0)]
        assert max_pairwise_distance(points) == pytest.approx(10.0)

    def test_single_point_is_zero(self):
        assert max_pairwise_distance([GeoPoint(5, 5)]) == 0.0

    def test_haversine_metric(self):
        points = [GeoPoint(116.4, 39.9), GeoPoint(121.5, 31.2)]
        assert max_pairwise_distance(points, metric="haversine") > 1000.0


class TestDistanceModel:
    def test_invalid_max_distance(self):
        with pytest.raises(ValueError):
            DistanceModel(max_distance=0.0)
        with pytest.raises(ValueError):
            DistanceModel(max_distance=-1.0)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            DistanceModel(max_distance=1.0, metric="manhattan")  # type: ignore[arg-type]

    def test_normalised_in_unit_interval(self):
        model = DistanceModel(max_distance=10.0)
        assert model.normalised(GeoPoint(0, 0), GeoPoint(3, 4)) == pytest.approx(0.5)

    def test_normalised_clipped_at_one(self):
        model = DistanceModel(max_distance=1.0)
        assert model.normalised(GeoPoint(0, 0), GeoPoint(30, 40)) == 1.0

    def test_worker_task_distance_uses_minimum_location(self):
        model = DistanceModel(max_distance=10.0)
        locations = [GeoPoint(0, 0), GeoPoint(9, 0)]
        # The task at (10, 0) is 1 away from the second location.
        assert model.worker_task_distance(locations, GeoPoint(10, 0)) == pytest.approx(0.1)

    def test_worker_task_distance_empty_locations_raises(self):
        model = DistanceModel(max_distance=10.0)
        with pytest.raises(ValueError):
            model.worker_task_distance([], GeoPoint(0, 0))

    def test_from_pois(self):
        pois = [GeoPoint(0, 0), GeoPoint(0, 4), GeoPoint(3, 0)]
        model = DistanceModel.from_pois(pois)
        assert model.max_distance == pytest.approx(5.0)

    def test_from_pois_degenerate_raises(self):
        with pytest.raises(ValueError):
            DistanceModel.from_pois([GeoPoint(1, 1), GeoPoint(1, 1)])

    def test_cache_cleared(self):
        model = DistanceModel(max_distance=5.0)
        model.raw_distance(GeoPoint(0, 0), GeoPoint(1, 1))
        assert len(model._cache) > 0
        model.clear_cache()
        assert len(model._cache) == 0

    def test_raw_distance_symmetric_via_cache(self):
        model = DistanceModel(max_distance=5.0)
        d1 = model.raw_distance(GeoPoint(0, 0), GeoPoint(1, 1))
        d2 = model.raw_distance(GeoPoint(1, 1), GeoPoint(0, 0))
        assert d1 == d2


class TestNormalisedDistanceMatrix:
    def test_shape_and_values(self):
        model = DistanceModel(max_distance=10.0)
        workers = [[GeoPoint(0, 0)], [GeoPoint(10, 0), GeoPoint(0, 10)]]
        tasks = [GeoPoint(0, 0), GeoPoint(0, 10)]
        matrix = normalised_distance_matrix(workers, tasks, model)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 0.0
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 1] == 0.0

    def test_values_in_unit_interval(self):
        model = DistanceModel(max_distance=3.0)
        workers = [[GeoPoint(0, 0)]]
        tasks = [GeoPoint(5, 5), GeoPoint(1, 1)]
        matrix = normalised_distance_matrix(workers, tasks, model)
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= 1.0)
