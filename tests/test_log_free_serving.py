"""Log-free serving hot-path tests (PR 5).

Pins the O(changed) update-path invariants:

* **refresh equivalence** — a full refresh run straight off the incremental
  updater's live tensor (:meth:`IncrementalUpdater.full_refresh` →
  ``fit_from_tensor``) matches the classic ``AnswerSet``-reflattening
  :meth:`LocationAwareInference.fit` to <= 1e-9, warm and cold, including
  streams with mid-stream open-world arrivals;
* **zero flattens** — a micro-batched stream with periodic full refreshes
  through a log-free :class:`AnswerIngestor` performs no ``AnswerSet`` →
  tensor flatten at all (``stats.log_flattens == 0``) and keeps no answer
  log;
* **dirty-row publishes** — every delta-published snapshot materialises to
  exactly the store a full-copy publish would have produced, and published
  versions stay immutable under later publishes;
* **per-entity early exit** — threshold 0 keeps the sweeps bit-identical to
  the exact engine, a saturating threshold degenerates to a single sweep;
* **bounded latency reservoir** — exact percentiles below the cap, bounded
  memory above it.
"""

import numpy as np
import pytest

from repro.core.em_kernel import AnswerTensor
from repro.core.incremental import IncrementalUpdater
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.core.params import ArrayParameterStore
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import POI, Answer, AnswerSet, Task, Worker
from repro.serving.frontend import LatencyReservoir
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig
from repro.serving.snapshots import SnapshotStore, load_snapshot
from repro.spatial.geometry import GeoPoint


def assert_parameters_close(a, b, atol=1e-9):
    assert set(a.workers) == set(b.workers)
    assert set(a.tasks) == set(b.tasks)
    for worker_id, worker in a.workers.items():
        other = b.workers[worker_id]
        np.testing.assert_allclose(worker.p_qualified, other.p_qualified, atol=atol)
        np.testing.assert_allclose(
            worker.distance_weights, other.distance_weights, atol=atol
        )
    for task_id, task in a.tasks.items():
        other = b.tasks[task_id]
        np.testing.assert_allclose(task.label_probs, other.label_probs, atol=atol)
        np.testing.assert_allclose(
            task.influence_weights, other.influence_weights, atol=atol
        )


def assert_stores_equal(a: ArrayParameterStore, b: ArrayParameterStore):
    assert a.worker_ids == b.worker_ids
    assert a.task_ids == b.task_ids
    np.testing.assert_array_equal(a.label_offsets, b.label_offsets)
    np.testing.assert_array_equal(a.p_qualified, b.p_qualified)
    np.testing.assert_array_equal(a.distance_weights, b.distance_weights)
    np.testing.assert_array_equal(a.influence_weights, b.influence_weights)
    np.testing.assert_array_equal(a.label_probs, b.label_probs)


def stream_batches(small_dataset, worker_pool, distance_model, existing, count=12):
    """Fresh (worker, task) answers not present in ``existing``, in a list."""
    simulator = AnswerSimulator(distance_model, noise=0.0)
    batch = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if existing.get(profile.worker_id, task.task_id) is None:
                batch.append(simulator.sample_answer(profile, task, seed=500 + index))
                index += 1
                if len(batch) >= count:
                    return batch
    return batch


def late_entities():
    worker = Worker("late-w", (GeoPoint(39.94, 116.39),))
    task = Task(
        task_id="late-t",
        poi=POI(poi_id="late-poi", name="Late POI", location=GeoPoint(39.96, 116.37)),
        labels=("a", "b", "c"),
        truth=(1, 0, 1),
    )
    return worker, task


class TestRefreshEquivalence:
    """Live-tensor full refresh == log-reflattening fit, <= 1e-9."""

    def _drive(self, model, collected_answers, batches):
        """Fit, stream ``batches`` through an updater, return (updater, log)."""
        model.fit(collected_answers)
        updater = IncrementalUpdater(model, full_refresh_interval=10_000)
        log = collected_answers.copy()
        for start in range(0, len(batches), 3):
            chunk = batches[start : start + 3]
            for answer in chunk:
                log.add(answer)
            updater.apply(log, chunk)
        return updater, log

    @pytest.mark.parametrize("warm", [True, False])
    def test_matches_log_reflatten_fit(
        self, small_dataset, worker_pool, distance_model, collected_answers, warm
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        batches = stream_batches(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        updater, log = self._drive(model, collected_answers, batches)
        pre_refresh = model.parameters

        offline = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        offline.fit(log, initial=pre_refresh if warm else None)

        flattens_before_refresh = updater.tensor_rebuilds
        refreshed = updater.full_refresh([], warm=warm)
        assert_parameters_close(refreshed, offline.parameters)
        # The refresh itself never flattens (the one recorded flatten is the
        # updater joining the pre-existing corpus on its first apply).
        assert updater.tensor_rebuilds == flattens_before_refresh == 1
        # The adopted live store mirrors the refreshed estimate, row-aligned.
        assert updater.live_store.worker_ids == updater.live_tensor.worker_ids
        assert model.last_result.store is updater.live_store

    @pytest.mark.parametrize("warm", [True, False])
    def test_matches_with_midstream_arrivals(
        self, small_dataset, worker_pool, distance_model, collected_answers, warm
    ):
        new_worker, new_task = late_entities()
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        model.add_worker(new_worker)
        model.add_task(new_task)
        updater = IncrementalUpdater(model, full_refresh_interval=10_000)
        log = collected_answers.copy()
        known = small_dataset.tasks[0]
        arrivals = [
            Answer("late-w", known.task_id, (1,) * known.num_labels),
            Answer(worker_pool.worker_ids[0], "late-t", (1, 0, 1)),
            Answer("late-w", "late-t", (0, 1, 1)),
        ]
        for answer in arrivals:
            log.add(answer)
        updater.apply(log, arrivals)
        pre_refresh = model.parameters

        offline = LocationAwareInference(
            small_dataset.tasks + [new_task],
            worker_pool.workers + [new_worker],
            distance_model,
        )
        offline.fit(log, initial=pre_refresh if warm else None)

        refreshed = updater.full_refresh([], warm=warm)
        assert "late-w" in refreshed.workers and "late-t" in refreshed.tasks
        assert_parameters_close(refreshed, offline.parameters)

    def test_refresh_consumes_the_triggering_batch(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        """The batch handed to full_refresh lands in the tensor and the fit."""
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        updater = IncrementalUpdater(model)
        batch = stream_batches(
            small_dataset, worker_pool, distance_model, collected_answers, count=4
        )
        log = collected_answers.copy()
        for answer in batch:
            log.add(answer)
        pre_refresh = model.parameters

        offline = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        offline.fit(log, initial=pre_refresh)

        refreshed = updater.full_refresh(batch, answers=log, warm=True)
        assert updater.live_tensor.num_answers == len(log)
        assert_parameters_close(refreshed, offline.parameters)
        assert updater.answers_since_full_refresh == 0

    def test_refresh_without_log_or_stream_history_is_rejected(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        """A fitted model + no live tensor + no log would silently drop history."""
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        updater = IncrementalUpdater(model)
        batch = stream_batches(
            small_dataset, worker_pool, distance_model, collected_answers, count=2
        )
        with pytest.raises(RuntimeError, match="answer log"):
            updater.full_refresh(batch)
        # Priming (the snapshot-restore path) makes the log-less start legal.
        updater.prime_carryover(model.parameters)
        refreshed = updater.full_refresh(batch)
        assert set(refreshed.workers) <= set(model.parameters.workers)


class TestLogFreeIngest:
    def _stream(self, small_dataset, worker_pool, distance_model, count=60):
        simulator = AnswerSimulator(distance_model, noise=0.0)
        events = []
        index = 0
        for profile in worker_pool:
            for task in small_dataset.tasks:
                if index >= count:
                    return events
                events.append(
                    AnswerEvent(
                        simulator.sample_answer(profile, task, seed=900 + index),
                        time=0.1 * index,
                    )
                )
                index += 1
        return events

    def test_zero_log_flattens_across_periodic_refreshes(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=64)
        ingest = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(
                max_batch_answers=6, max_batch_delay=100.0, full_refresh_interval=20
            ),
        )
        for event in self._stream(small_dataset, worker_pool, distance_model):
            ingest.submit(event)
        ingest.flush(full=True)
        assert ingest.stats.full_refreshes >= 3
        assert ingest.stats.incremental_updates >= 1
        assert ingest.stats.log_flattens == 0
        assert len(ingest.answers) == 0  # log-free: nothing retained
        assert ingest._updater.live_tensor.num_answers == ingest.stats.answers

    def test_cold_final_flush_matches_offline_fit(
        self, small_dataset, worker_pool, distance_model
    ):
        """warm=False shutdown refresh == offline fit, without any log."""
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        ingest = AnswerIngestor(
            inference,
            SnapshotStore(),
            config=IngestConfig(
                max_batch_answers=8, max_batch_delay=100.0, full_refresh_interval=30
            ),
        )
        events = self._stream(small_dataset, worker_pool, distance_model)
        for event in events:
            ingest.submit(event)
        ingest.flush(full=True, warm=False)
        assert ingest.stats.log_flattens == 0

        offline = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        offline.fit(AnswerSet(event.answer for event in events))
        assert_parameters_close(inference.parameters, offline.parameters)

    def test_delta_publish_equals_full_copy_publish(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=64)
        ingest = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(
                max_batch_answers=5, max_batch_delay=100.0, full_refresh_interval=1000
            ),
        )
        checked_deltas = 0
        for event in self._stream(small_dataset, worker_pool, distance_model):
            snapshot = ingest.submit(event)
            if snapshot is None:
                continue
            # publish_store rebuilds the full-copy form of the exact same
            # estimate (dirty state was already consumed by the publish).
            full = ingest._updater.publish_store()
            if not snapshot.materialized:
                checked_deltas += 1
            assert_stores_equal(snapshot.store, full)
        assert ingest.stats.delta_publishes >= 3
        assert checked_deltas >= 3

    def test_published_versions_stay_immutable_under_later_publishes(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=64)
        ingest = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(
                max_batch_answers=5, max_batch_delay=100.0, full_refresh_interval=1000
            ),
        )
        events = self._stream(small_dataset, worker_pool, distance_model)
        pinned = None
        pinned_copy = None
        for index, event in enumerate(events):
            snapshot = ingest.submit(event)
            if snapshot is not None and pinned is None and snapshot.version >= 2:
                pinned = snapshot
                pinned_copy = snapshot.store.copy()  # materialises version v
        ingest.flush(full=True)
        # Later publishes (including a full refresh) never mutate version v.
        assert pinned is not None
        assert_stores_equal(pinned.store, pinned_copy)
        with pytest.raises((ValueError, RuntimeError)):
            pinned.store.p_qualified[0] = 0.0

    def test_delta_snapshot_save_load_round_trip(
        self, small_dataset, worker_pool, distance_model, tmp_path
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=64)
        ingest = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(
                max_batch_answers=5, max_batch_delay=100.0, full_refresh_interval=1000
            ),
        )
        delta_snapshot = None
        for event in self._stream(small_dataset, worker_pool, distance_model):
            snapshot = ingest.submit(event)
            if snapshot is not None and not snapshot.materialized:
                delta_snapshot = snapshot
        assert delta_snapshot is not None
        path = delta_snapshot.save(tmp_path / "delta.npz")
        restored = load_snapshot(path)
        assert restored.version == delta_snapshot.version
        assert_stores_equal(restored.store, delta_snapshot.store)


class TestDeltaChainBound:
    def _base_store(self):
        from repro.core.params import ModelParameters

        params = ModelParameters()
        params.workers["w1"] = params.worker("w1")
        params.workers["w2"] = params.worker("w2")
        params.tasks["t1"] = params.task("t1", num_labels=2)
        return params.to_array_store(["w1", "w2"], ["t1"], [2])

    def _delta(self, store, p_qualified):
        from repro.core.params import StoreDelta

        return StoreDelta(
            worker_rows=np.asarray([0], dtype=np.intp),
            p_qualified=np.asarray([p_qualified]),
            distance_weights=store.distance_weights[:1].copy(),
            task_rows=np.empty(0, dtype=np.intp),
            influence_weights=np.empty((0, store.influence_weights.shape[1])),
            label_slots=np.empty(0, dtype=np.intp),
            label_probs=np.empty(0),
            num_workers=store.num_workers,
            num_tasks=store.num_tasks,
        )

    def test_chain_is_bounded_and_materialises_correctly(self):
        store = self._base_store()
        snapshots = SnapshotStore(max_snapshots=100)
        snapshots.publish(store)
        published = []
        for index in range(SnapshotStore.max_delta_chain + 3):
            value = 0.5 + 0.001 * index
            published.append(
                (value, snapshots.publish_delta(self._delta(store, value)))
            )
        # The chain cap forced at least one eager materialisation mid-stream.
        assert any(s.materialized for _, s in published[:-1])
        # Every version, materialised in arbitrary order, reads its own value.
        for value, snapshot in reversed(published):
            assert snapshot.store.p_qualified[0] == pytest.approx(value)

    def test_delta_universe_mismatch_is_rejected(self):
        store = self._base_store()
        snapshots = SnapshotStore()
        snapshots.publish(store)
        bad = self._delta(store, 0.9)
        object.__setattr__(bad, "num_workers", store.num_workers + 1)
        with pytest.raises(ValueError, match="universe"):
            snapshots.publish_delta(bad)

    def test_delta_before_any_publish_is_rejected(self):
        store = self._base_store()
        with pytest.raises(ValueError, match="full snapshot"):
            SnapshotStore().publish_delta(self._delta(store, 0.7))


class TestEarlyExit:
    def _setup(self, small_dataset, worker_pool, distance_model, collected_answers):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        batch = stream_batches(
            small_dataset, worker_pool, distance_model, collected_answers, count=5
        )
        log = collected_answers.copy()
        for answer in batch:
            log.add(answer)
        return model, log, batch

    def test_zero_threshold_is_exact(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        results = {}
        for threshold in (0.0, None):  # None = plain updater default
            model, log, batch = self._setup(
                small_dataset, worker_pool, distance_model, collected_answers
            )
            kwargs = {} if threshold is None else {"early_exit_threshold": threshold}
            updater = IncrementalUpdater(model, local_iterations=3, **kwargs)
            results[threshold] = updater.apply(log, batch)
        assert_parameters_close(results[0.0], results[None], atol=0.0)

    def test_saturating_threshold_degenerates_to_one_sweep(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model, log, batch = self._setup(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        eager = IncrementalUpdater(model, local_iterations=3, early_exit_threshold=1.0)
        eager_params = eager.apply(log, batch)

        model2, log2, batch2 = self._setup(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        single = IncrementalUpdater(model2, local_iterations=1)
        single_params = single.apply(log2, batch2)
        assert_parameters_close(eager_params, single_params, atol=0.0)

    def test_drift_stays_within_threshold_scale(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        threshold = 0.005
        model, log, batch = self._setup(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        exact_updater = IncrementalUpdater(model, local_iterations=2)
        exact = exact_updater.apply(log, batch)

        model2, log2, batch2 = self._setup(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        early = IncrementalUpdater(
            model2, local_iterations=2, early_exit_threshold=threshold
        )
        approx = early.apply(log2, batch2)
        # A settled entity skipped its last sweep, which by definition would
        # have moved it at most `threshold`; everything else is exact.
        assert_parameters_close(exact, approx, atol=threshold)

    def test_invalid_threshold_rejected(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        with pytest.raises(ValueError):
            IncrementalUpdater(model, early_exit_threshold=-0.1)
        with pytest.raises(ValueError):
            IngestConfig(local_convergence_threshold=-1.0)


class TestLatencyReservoir:
    def test_exact_percentiles_below_cap(self):
        reservoir = LatencyReservoir(capacity=64)
        values = [float(v) for v in range(50)]
        for value in values:
            reservoir.add(value)
        assert len(reservoir) == 50
        assert reservoir.count == 50
        assert not reservoir.saturated
        assert reservoir.percentile(50.0) == pytest.approx(np.percentile(values, 50.0))
        assert reservoir.percentile(95.0) == pytest.approx(np.percentile(values, 95.0))

    def test_bounded_beyond_cap_and_representative(self):
        reservoir = LatencyReservoir(capacity=128, seed=7)
        for value in range(10_000):
            reservoir.add(float(value))
        assert len(reservoir) == 128
        assert reservoir.count == 10_000
        assert reservoir.saturated
        # A uniform sample of 0..9999: the median estimate lands mid-range.
        assert 2_000 <= reservoir.percentile(50.0) <= 8_000

    def test_frontend_stats_compatibility_view(self):
        from repro.serving.frontend import FrontendStats

        stats = FrontendStats()
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.latencies.add(value)
        assert stats.latencies_ms == [1.0, 2.0, 3.0, 4.0]
        assert stats.p50_latency_ms == pytest.approx(2.5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestFitFromTensor:
    def test_matches_fit_on_the_same_answers(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        tensor = AnswerTensor.build(
            collected_answers,
            model._tasks,
            model._workers,
            distance_model,
            model.config.function_set,
        )
        model.fit_from_tensor(tensor)
        from_tensor = model.parameters
        assert model.last_result.store is not None

        offline = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        offline.fit(collected_answers)
        assert_parameters_close(from_tensor, offline.parameters, atol=0.0)

    def test_reference_engine_rejects_tensor_fit(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(engine="reference"),
        )
        tensor = AnswerTensor.build(
            collected_answers,
            model._tasks,
            model._workers,
            distance_model,
            model.config.function_set,
        )
        with pytest.raises(ValueError, match="reference"):
            model.fit_from_tensor(tensor)
