"""Tests for repro.framework.config."""

import pytest

from repro.framework.config import FrameworkConfig


class TestFrameworkConfig:
    def test_defaults_match_paper_deployment(self):
        config = FrameworkConfig()
        assert config.budget == 1000
        assert config.tasks_per_worker == 2
        assert config.evaluation_checkpoints == (600, 700, 800, 900, 1000)
        assert config.inference.alpha == 0.5

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(budget=0)

    def test_tasks_per_worker_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(tasks_per_worker=0)

    def test_workers_per_round_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(workers_per_round=0)

    def test_full_refresh_interval_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(full_refresh_interval=0)

    def test_checkpoints_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameworkConfig(evaluation_checkpoints=(0, 100))

    def test_checkpoints_cannot_exceed_budget(self):
        with pytest.raises(ValueError):
            FrameworkConfig(budget=500, evaluation_checkpoints=(600,))

    def test_custom_checkpoints(self):
        config = FrameworkConfig(budget=100, evaluation_checkpoints=(50, 100))
        assert config.evaluation_checkpoints == (50, 100)
