"""Property-based tests for the spatial substrate.

Complements tests/test_properties.py with invariants of the distance model,
the bounding box and the grid index: metric symmetry, normalisation bounds,
clamping idempotence, and grid-vs-brute-force agreement on nearest queries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import DistanceModel
from repro.spatial.geometry import GeoPoint, euclidean_distance, haversine_distance
from repro.spatial.grid_index import GridIndex

coordinate = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
latitude = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
small_coordinate = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestMetricProperties:
    @given(x1=coordinate, y1=latitude, x2=coordinate, y2=latitude)
    def test_haversine_symmetric_and_non_negative(self, x1, y1, x2, y2):
        a, b = GeoPoint(x1, y1), GeoPoint(x2, y2)
        d_ab = haversine_distance(a, b)
        d_ba = haversine_distance(b, a)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-9)

    @given(x=coordinate, y=latitude)
    def test_haversine_identity(self, x, y):
        point = GeoPoint(x, y)
        assert haversine_distance(point, point) == pytest.approx(0.0, abs=1e-6)

    @given(x1=coordinate, y1=coordinate, x2=coordinate, y2=coordinate)
    def test_euclidean_symmetric(self, x1, y1, x2, y2):
        a, b = GeoPoint(x1, y1), GeoPoint(x2, y2)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    @given(
        x1=coordinate, y1=coordinate, x2=coordinate, y2=coordinate,
        x3=coordinate, y3=coordinate,
    )
    def test_euclidean_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = GeoPoint(x1, y1), GeoPoint(x2, y2), GeoPoint(x3, y3)
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-6
        )


class TestDistanceModelProperties:
    @given(
        max_distance=st.floats(min_value=0.1, max_value=1000.0),
        x1=small_coordinate, y1=small_coordinate,
        x2=small_coordinate, y2=small_coordinate,
    )
    def test_normalised_in_unit_interval(self, max_distance, x1, y1, x2, y2):
        model = DistanceModel(max_distance=max_distance)
        value = model.normalised(GeoPoint(x1, y1), GeoPoint(x2, y2))
        assert 0.0 <= value <= 1.0

    @given(
        locations=st.lists(
            st.tuples(small_coordinate, small_coordinate), min_size=1, max_size=4
        ),
        tx=small_coordinate,
        ty=small_coordinate,
    )
    def test_worker_distance_is_minimum_over_locations(self, locations, tx, ty):
        model = DistanceModel(max_distance=20.0)
        points = [GeoPoint(x, y) for x, y in locations]
        task = GeoPoint(tx, ty)
        combined = model.worker_task_distance(points, task)
        individual = [model.normalised(p, task) for p in points]
        assert combined == pytest.approx(min(individual))


class TestBoundingBoxProperties:
    @given(
        min_x=small_coordinate, min_y=small_coordinate,
        width=st.floats(min_value=0.0, max_value=5.0),
        height=st.floats(min_value=0.0, max_value=5.0),
        px=coordinate, py=coordinate,
    )
    def test_clamp_is_idempotent_and_contained(self, min_x, min_y, width, height, px, py):
        box = BoundingBox(min_x, min_y, min_x + width, min_y + height)
        clamped = box.clamp(GeoPoint(px, py))
        assert box.contains(clamped)
        assert box.clamp(clamped) == clamped


class TestGridIndexProperties:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_nearest_matches_brute_force(self, data):
        bounds = BoundingBox(0.0, 0.0, 10.0, 10.0)
        index = GridIndex(bounds, cells_per_axis=6)
        count = data.draw(st.integers(min_value=1, max_value=40))
        points = {}
        for i in range(count):
            x = data.draw(small_coordinate)
            y = data.draw(small_coordinate)
            points[f"p{i}"] = GeoPoint(x, y)
            index.insert(f"p{i}", GeoPoint(x, y))
        qx = data.draw(small_coordinate)
        qy = data.draw(small_coordinate)
        query = GeoPoint(qx, qy)
        k = data.draw(st.integers(min_value=1, max_value=5))

        got = index.nearest(query, count=k)
        expected = sorted(
            points, key=lambda pid: (euclidean_distance(query, points[pid]), pid)
        )[:k]
        got_distances = [euclidean_distance(query, points[p]) for p in got]
        expected_distances = [euclidean_distance(query, points[p]) for p in expected]
        assert len(got) == min(k, count)
        assert np.allclose(got_distances, expected_distances)
