"""Tests for repro.crowd.arrival."""

import pytest

from repro.crowd.arrival import (
    PoissonArrival,
    RoundRobinArrival,
    TimedArrivalSchedule,
    UniformRandomArrival,
)
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.spatial.bbox import BoundingBox


@pytest.fixture(scope="module")
def pool():
    bounds = BoundingBox(0.0, 0.0, 1.0, 1.0)
    return WorkerPool.generate(bounds, spec=WorkerPoolSpec(num_workers=10), seed=1)


class TestUniformRandomArrival:
    def test_batch_size(self, pool):
        arrival = UniformRandomArrival(pool, batch_size=4, seed=3)
        batch = arrival.next_batch(0)
        assert len(batch) == 4
        assert len(set(batch)) == 4
        assert all(worker_id in pool for worker_id in batch)

    def test_reset_replays_sequence(self, pool):
        arrival = UniformRandomArrival(pool, batch_size=3, seed=9)
        first = [arrival.next_batch(i) for i in range(3)]
        arrival.reset()
        second = [arrival.next_batch(i) for i in range(3)]
        assert first == second

    def test_batch_size_validation(self, pool):
        with pytest.raises(ValueError):
            UniformRandomArrival(pool, batch_size=0)
        with pytest.raises(ValueError):
            UniformRandomArrival(pool, batch_size=len(pool) + 1)


class TestRoundRobinArrival:
    def test_rotation_covers_all_workers(self, pool):
        arrival = RoundRobinArrival(pool, batch_size=3)
        seen = set()
        for round_index in range(10):
            seen.update(arrival.next_batch(round_index))
        assert seen == set(pool.worker_ids)

    def test_no_duplicates_within_batch(self, pool):
        arrival = RoundRobinArrival(pool, batch_size=7)
        for round_index in range(5):
            batch = arrival.next_batch(round_index)
            assert len(batch) == len(set(batch))

    def test_deterministic(self, pool):
        a = RoundRobinArrival(pool, batch_size=4)
        b = RoundRobinArrival(pool, batch_size=4)
        assert [a.next_batch(i) for i in range(4)] == [b.next_batch(i) for i in range(4)]

    def test_batch_size_validation(self, pool):
        with pytest.raises(ValueError):
            RoundRobinArrival(pool, batch_size=0)

    def test_reset_is_noop(self, pool):
        arrival = RoundRobinArrival(pool, batch_size=2)
        arrival.reset()
        assert len(arrival.next_batch(0)) == 2


class TestPoissonArrival:
    def test_batches_non_empty_and_within_pool(self, pool):
        arrival = PoissonArrival(pool, mean_batch_size=3.0, seed=5)
        for round_index in range(20):
            batch = arrival.next_batch(round_index)
            assert 1 <= len(batch) <= len(pool)
            assert len(batch) == len(set(batch))

    def test_invalid_mean(self, pool):
        with pytest.raises(ValueError):
            PoissonArrival(pool, mean_batch_size=0.0)

    def test_reset_replays(self, pool):
        arrival = PoissonArrival(pool, mean_batch_size=2.0, seed=8)
        first = [arrival.next_batch(i) for i in range(5)]
        arrival.reset()
        second = [arrival.next_batch(i) for i in range(5)]
        assert first == second


class TestTimedArrivalSchedule:
    def test_times_are_strictly_increasing(self, pool):
        schedule = TimedArrivalSchedule(
            RoundRobinArrival(pool, batch_size=3), mean_interarrival=2.0, seed=4
        )
        batches = [schedule.next_batch() for _ in range(6)]
        times = [batch.time for batch in batches]
        assert times == sorted(times)
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert [batch.round_index for batch in batches] == list(range(6))
        assert schedule.now == times[-1]

    def test_membership_comes_from_wrapped_process(self, pool):
        process = RoundRobinArrival(pool, batch_size=3)
        schedule = TimedArrivalSchedule(process, seed=4)
        batch = schedule.next_batch()
        process.reset()
        assert list(batch.worker_ids) == process.next_batch(0)

    def test_reset_replays_clock_and_membership(self, pool):
        schedule = TimedArrivalSchedule(
            UniformRandomArrival(pool, batch_size=2, seed=9), seed=10
        )
        first = [schedule.next_batch() for _ in range(4)]
        schedule.reset()
        second = [schedule.next_batch() for _ in range(4)]
        assert first == second
        assert schedule.now == first[-1].time

    def test_invalid_mean_interarrival(self, pool):
        with pytest.raises(ValueError):
            TimedArrivalSchedule(
                RoundRobinArrival(pool, batch_size=2), mean_interarrival=0.0
            )
