"""Tests for repro.spatial.bbox."""

import numpy as np
import pytest

from repro.spatial.bbox import BEIJING_BBOX, CHINA_BBOX, BoundingBox
from repro.spatial.geometry import GeoPoint


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert box.width == 4.0
        assert box.height == 2.0
        assert box.center == GeoPoint(2.0, 1.0)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 2.0)

    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(GeoPoint(0.5, 0.5))
        assert box.contains(GeoPoint(0.0, 1.0))
        assert not box.contains(GeoPoint(1.5, 0.5))

    def test_clamp(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.clamp(GeoPoint(2.0, -1.0)) == GeoPoint(1.0, 0.0)
        assert box.clamp(GeoPoint(0.3, 0.4)) == GeoPoint(0.3, 0.4)

    def test_sample_inside(self):
        box = BoundingBox(10.0, 20.0, 11.0, 21.0)
        points = box.sample(np.random.default_rng(3), 50)
        assert len(points) == 50
        assert all(box.contains(p) for p in points)

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).sample(np.random.default_rng(0), -1)

    def test_expand(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expand(0.5)
        assert box.min_x == -0.5
        assert box.max_y == 1.5

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expand(-0.1)

    def test_from_points(self):
        box = BoundingBox.from_points([GeoPoint(1, 5), GeoPoint(3, 2), GeoPoint(2, 7)])
        assert box == BoundingBox(1, 2, 3, 7)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])


class TestPresetBoxes:
    def test_beijing_inside_china(self):
        for corner in (
            GeoPoint(BEIJING_BBOX.min_x, BEIJING_BBOX.min_y),
            GeoPoint(BEIJING_BBOX.max_x, BEIJING_BBOX.max_y),
        ):
            assert CHINA_BBOX.contains(corner)

    def test_positive_extent(self):
        assert BEIJING_BBOX.width > 0
        assert CHINA_BBOX.height > 0
