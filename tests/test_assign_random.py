"""Tests for repro.assign.random_assigner."""

import pytest

from repro.assign.random_assigner import RandomAssigner
from repro.data.models import Answer, AnswerSet


class TestRandomAssigner:
    def test_each_worker_gets_h_tasks(self, small_dataset, worker_pool):
        assigner = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=3)
        workers = worker_pool.worker_ids[:4]
        assignment = assigner.assign(workers, 2, AnswerSet())
        assert set(assignment) == set(workers)
        for tasks in assignment.values():
            assert len(tasks) == 2
            assert len(set(tasks)) == 2

    def test_respects_already_answered_tasks(self, small_dataset, worker_pool):
        worker_id = worker_pool.worker_ids[0]
        answers = AnswerSet(
            [
                Answer(worker_id, task.task_id, tuple([1] * task.num_labels))
                for task in small_dataset.tasks[:-2]
            ]
        )
        assigner = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=3)
        assignment = assigner.assign([worker_id], 5, answers)
        remaining = {task.task_id for task in small_dataset.tasks[-2:]}
        assert set(assignment[worker_id]) == remaining

    def test_worker_with_no_candidates_gets_empty_list(self, small_dataset, worker_pool):
        worker_id = worker_pool.worker_ids[0]
        answers = AnswerSet(
            [
                Answer(worker_id, task.task_id, tuple([1] * task.num_labels))
                for task in small_dataset.tasks
            ]
        )
        assigner = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=3)
        assert assigner.assign([worker_id], 2, answers)[worker_id] == []

    def test_deterministic_for_seed(self, small_dataset, worker_pool):
        workers = worker_pool.worker_ids[:3]
        a = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=9).assign(
            workers, 2, AnswerSet()
        )
        b = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=9).assign(
            workers, 2, AnswerSet()
        )
        assert a == b

    def test_different_seeds_differ(self, small_dataset, worker_pool):
        workers = worker_pool.worker_ids[:3]
        a = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=1).assign(
            workers, 3, AnswerSet()
        )
        b = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=2).assign(
            workers, 3, AnswerSet()
        )
        assert a != b

    def test_validation(self, small_dataset, worker_pool):
        assigner = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=1)
        with pytest.raises(ValueError):
            assigner.assign(worker_pool.worker_ids[:1], 0, AnswerSet())
        with pytest.raises(KeyError):
            assigner.assign(["ghost"], 1, AnswerSet())
