"""Equivalence tests for repro.core.accuracy_kernel vs the scalar Section IV-B math.

The vectorized AccOpt engine is only trustworthy if its batched kernels
reproduce the scalar reference exactly (within float tolerance):

* the flat Lemma 2 recursion (:func:`~repro.core.accuracy_kernel.add_workers`,
  :func:`~repro.core.accuracy_kernel.add_worker`) against
  :meth:`~repro.core.accuracy.LabelAccuracy.add_workers` and the exponential
  :func:`~repro.core.accuracy.enumerate_expected_accuracy` definition;
* the batched Equation 9 matrix against
  :meth:`~repro.core.accuracy.AccuracyEstimator.answer_accuracy`;
* the closed-form marginal-gain matrix against the scalar ``gain − already``
  computation the reference greedy loop performs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import accuracy_kernel
from repro.core.accuracy import (
    AccuracyEstimator,
    LabelAccuracy,
    enumerate_expected_accuracy,
)
from repro.core.inference import LocationAwareInference
from repro.spatial.distance import normalised_distance_matrix

probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

TOLERANCE = 1e-9


@pytest.fixture()
def fitted(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    return model.parameters


class TestLemma2Recursion:
    @given(
        p_z1=st.lists(probability, min_size=1, max_size=6),
        answer_count=st.integers(min_value=0, max_value=20),
        accuracies=st.lists(probability, min_size=0, max_size=8),
    )
    @settings(max_examples=80)
    def test_matches_scalar_add_workers(self, p_z1, answer_count, accuracies):
        acc_correct, acc_incorrect = accuracy_kernel.add_workers(
            p_z1, answer_count, accuracies
        )
        for k, p in enumerate(p_z1):
            scalar = LabelAccuracy.from_current_inference(p, answer_count).add_workers(
                accuracies
            )
            assert acc_correct[k] == pytest.approx(
                scalar.acc_if_correct, abs=TOLERANCE
            )
            assert acc_incorrect[k] == pytest.approx(
                scalar.acc_if_incorrect, abs=TOLERANCE
            )

    @given(
        p_z1=probability,
        answer_count=st.integers(min_value=0, max_value=10),
        accuracies=st.lists(probability, min_size=1, max_size=6),
    )
    @settings(max_examples=60)
    def test_matches_exponential_enumeration(self, p_z1, answer_count, accuracies):
        acc_correct, acc_incorrect = accuracy_kernel.add_workers(
            [p_z1], answer_count, accuracies
        )
        enumerated = enumerate_expected_accuracy(p_z1, answer_count, accuracies)
        assert acc_correct[0] == pytest.approx(
            enumerated.acc_if_correct, abs=TOLERANCE
        )
        assert acc_incorrect[0] == pytest.approx(
            enumerated.acc_if_incorrect, abs=TOLERANCE
        )

    @given(
        p_z1=st.lists(probability, min_size=1, max_size=5),
        answer_count=st.integers(min_value=0, max_value=12),
        accuracies=st.lists(probability, min_size=1, max_size=5),
    )
    @settings(max_examples=60)
    def test_expected_improvement_matches_equation_20(
        self, p_z1, answer_count, accuracies
    ):
        baseline_correct = np.asarray(p_z1, dtype=float)
        baseline_incorrect = 1.0 - baseline_correct
        acc_correct, acc_incorrect = accuracy_kernel.add_workers(
            p_z1, answer_count, accuracies
        )
        batched = accuracy_kernel.expected_improvement(
            p_z1, acc_correct, acc_incorrect, baseline_correct, baseline_incorrect
        )
        for k, p in enumerate(p_z1):
            base = LabelAccuracy.from_current_inference(p, answer_count)
            scalar = base.add_workers(accuracies).expected_improvement_over(base)
            assert batched[k] == pytest.approx(scalar, abs=TOLERANCE)

    def test_incremental_add_worker_matches_bulk(self):
        state = accuracy_kernel.baseline_state(
            [0.2, 0.9, 0.5], np.asarray([0, 3]), [2]
        )
        for pe in (0.6, 0.8, 0.3):
            accuracy_kernel.add_worker(state, 0, pe)
        acc_correct, acc_incorrect = accuracy_kernel.add_workers(
            [0.2, 0.9, 0.5], 2, [0.6, 0.8, 0.3]
        )
        np.testing.assert_allclose(state.acc_correct, acc_correct, atol=TOLERANCE)
        np.testing.assert_allclose(state.acc_incorrect, acc_incorrect, atol=TOLERANCE)
        assert state.effective_answers[0] == pytest.approx(5.0)

    def test_baseline_state_validation(self):
        with pytest.raises(ValueError):
            accuracy_kernel.baseline_state([0.5, 0.5], np.asarray([0, 3]), [1])
        with pytest.raises(ValueError):
            accuracy_kernel.baseline_state([0.5, 0.5], np.asarray([0, 2]), [1, 2])
        with pytest.raises(ValueError):
            accuracy_kernel.baseline_state([0.5, 0.5], np.asarray([0, 2]), [-1])


class TestBatchedEstimator:
    def _matrices(self, small_dataset, worker_pool, distance_model, params, answers):
        task_ids = sorted(small_dataset.task_index)
        worker_ids = list(worker_pool.worker_ids)
        workers = {w.worker_id: w for w in worker_pool.workers}
        num_labels = [small_dataset.task_index[t].num_labels for t in task_ids]
        store = params.to_array_store(worker_ids, task_ids, num_labels)
        distances = normalised_distance_matrix(
            [workers[w].locations for w in worker_ids],
            [small_dataset.task_index[t].location for t in task_ids],
            distance_model,
        )
        estimator = AccuracyEstimator(
            tasks=small_dataset.task_index,
            workers=workers,
            distance_model=distance_model,
            parameters=params,
            answers=answers,
        )
        return task_ids, worker_ids, store, distances, estimator

    def test_answer_accuracy_matrix_matches_equation_9(
        self, small_dataset, worker_pool, distance_model, fitted, collected_answers
    ):
        task_ids, worker_ids, store, distances, estimator = self._matrices(
            small_dataset, worker_pool, distance_model, fitted, collected_answers
        )
        matrix = accuracy_kernel.answer_accuracy_matrix(store, distances)
        for i, worker_id in enumerate(worker_ids):
            for j, task_id in enumerate(task_ids):
                assert matrix[i, j] == pytest.approx(
                    estimator.answer_accuracy(worker_id, task_id), abs=TOLERANCE
                )

    def test_answer_accuracy_matrix_shape_validation(
        self, small_dataset, worker_pool, distance_model, fitted, collected_answers
    ):
        _, _, store, distances, _ = self._matrices(
            small_dataset, worker_pool, distance_model, fitted, collected_answers
        )
        with pytest.raises(ValueError):
            accuracy_kernel.answer_accuracy_matrix(store, distances[:, :-1])

    def test_marginal_gains_match_scalar_task_improvement(
        self, small_dataset, worker_pool, distance_model, fitted, collected_answers
    ):
        task_ids, worker_ids, store, distances, estimator = self._matrices(
            small_dataset, worker_pool, distance_model, fitted, collected_answers
        )
        matrix = accuracy_kernel.answer_accuracy_matrix(store, distances)
        state = accuracy_kernel.baseline_state(
            store.label_probs,
            store.label_offsets,
            [collected_answers.answer_count_of_task(t) for t in task_ids],
        )
        gains = accuracy_kernel.marginal_gains(state, matrix)
        for i, worker_id in enumerate(worker_ids):
            for j, task_id in enumerate(task_ids):
                scalar, _ = estimator.task_improvement(task_id, worker_id)
                assert gains[i, j] == pytest.approx(scalar, abs=TOLERANCE)

    def test_column_rescore_matches_scalar_after_picks(
        self, small_dataset, worker_pool, distance_model, fitted, collected_answers
    ):
        """After committing picks, the column re-score still tracks the scalar
        ``gain − already`` computation of the reference greedy loop."""
        task_ids, worker_ids, store, distances, estimator = self._matrices(
            small_dataset, worker_pool, distance_model, fitted, collected_answers
        )
        matrix = accuracy_kernel.answer_accuracy_matrix(store, distances)
        state = accuracy_kernel.baseline_state(
            store.label_probs,
            store.label_offsets,
            [collected_answers.answer_count_of_task(t) for t in task_ids],
        )
        target = 3
        task_id = task_ids[target]
        baselines = estimator.current_label_accuracies(task_id)
        scalar_states = list(baselines)
        for i in (0, 2, 5):  # commit three tentative workers onto one task
            accuracy_kernel.add_worker(state, target, float(matrix[i, target]))
            pe = estimator.answer_accuracy(worker_ids[i], task_id)
            scalar_states = [s.add_worker(pe) for s in scalar_states]

        column = accuracy_kernel.marginal_gains_for_task(
            state, target, matrix[:, target]
        )
        already = sum(
            s.expected_improvement_over(b) for s, b in zip(scalar_states, baselines)
        )
        for i, worker_id in enumerate(worker_ids):
            pe = estimator.answer_accuracy(worker_id, task_id)
            new_states = [s.add_worker(pe) for s in scalar_states]
            gain = sum(
                n.expected_improvement_over(b) for n, b in zip(new_states, baselines)
            )
            assert column[i] == pytest.approx(gain - already, abs=TOLERANCE)
