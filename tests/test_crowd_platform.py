"""Tests for repro.crowd.platform."""

import pytest

from repro.crowd.budget import BudgetExhaustedError


class TestBatchCollection:
    def test_collect_batch_answers_counts(self, platform, small_dataset):
        answers = platform.collect_batch_answers(answers_per_task=3, seed=1)
        assert len(answers) == 3 * len(small_dataset)
        assert platform.budget.spent == 3 * len(small_dataset)
        for task in small_dataset.tasks:
            assert answers.answer_count_of_task(task.task_id) == 3

    def test_collect_charges_budget_before_collecting(self, platform, small_dataset):
        # 3 answers per task for 12 tasks = 36 <= 200 works; 20 answers per task
        # would need 240 > 200 and must fail without recording anything.
        with pytest.raises(ValueError):
            platform.collect_batch_answers(answers_per_task=20, seed=1)
        assert len(platform.answers) == 0

    def test_collect_more_than_pool_raises(self, platform):
        with pytest.raises(ValueError):
            platform.collect_batch_answers(answers_per_task=100, seed=1)

    def test_budget_exhaustion_detected(self, small_dataset, worker_pool, distance_model):
        from repro.crowd.budget import Budget
        from repro.crowd.platform import CrowdPlatform

        tiny = CrowdPlatform(
            dataset=small_dataset,
            worker_pool=worker_pool,
            budget=Budget(total=5),
            distance_model=distance_model,
            seed=1,
        )
        with pytest.raises(BudgetExhaustedError):
            tiny.collect_batch_answers(answers_per_task=1, seed=1)


class TestOnlineAssignment:
    def test_next_worker_batch(self, platform):
        batch = platform.next_worker_batch()
        assert len(batch) == 3
        assert all(worker_id in platform.worker_pool for worker_id in batch)

    def test_next_worker_batch_requires_arrival_process(
        self, small_dataset, worker_pool, distance_model
    ):
        from repro.crowd.budget import Budget
        from repro.crowd.platform import CrowdPlatform

        platform = CrowdPlatform(
            dataset=small_dataset,
            worker_pool=worker_pool,
            budget=Budget(total=10),
            distance_model=distance_model,
        )
        with pytest.raises(RuntimeError):
            platform.next_worker_batch()

    def test_execute_assignment_records_answers(self, platform, small_dataset):
        worker_id = platform.worker_pool.worker_ids[0]
        task_ids = [task.task_id for task in small_dataset.tasks[:2]]
        collected = platform.execute_assignment({worker_id: task_ids})
        assert len(collected) == 2
        assert platform.budget.spent == 2
        assert platform.answers.tasks_of_worker(worker_id) == set(task_ids)
        assert platform.stats.rounds == 1
        assert platform.stats.assignments == 2
        assert len(platform.assignments) == 2

    def test_duplicate_assignment_rejected(self, platform, small_dataset):
        worker_id = platform.worker_pool.worker_ids[0]
        task_id = small_dataset.tasks[0].task_id
        platform.execute_assignment({worker_id: [task_id]})
        with pytest.raises(ValueError):
            platform.execute_assignment({worker_id: [task_id]})

    def test_unknown_worker_rejected(self, platform, small_dataset):
        with pytest.raises(KeyError):
            platform.execute_assignment({"ghost": [small_dataset.tasks[0].task_id]})

    def test_unknown_task_rejected(self, platform):
        worker_id = platform.worker_pool.worker_ids[0]
        with pytest.raises(KeyError):
            platform.execute_assignment({worker_id: ["ghost-task"]})

    def test_deterministic_answers_for_same_seed(
        self, small_dataset, worker_pool, distance_model
    ):
        from repro.crowd.budget import Budget
        from repro.crowd.platform import CrowdPlatform

        def run():
            platform = CrowdPlatform(
                dataset=small_dataset,
                worker_pool=worker_pool,
                budget=Budget(total=50),
                distance_model=distance_model,
                seed=33,
            )
            worker_id = worker_pool.worker_ids[1]
            task_ids = [task.task_id for task in small_dataset.tasks[:3]]
            return [a.responses for a in platform.execute_assignment({worker_id: task_ids})]

        assert run() == run()

    def test_tasks_not_done_by(self, platform, small_dataset):
        worker_id = platform.worker_pool.worker_ids[0]
        first_task = small_dataset.tasks[0].task_id
        platform.execute_assignment({worker_id: [first_task]})
        remaining = platform.tasks_not_done_by(worker_id)
        assert len(remaining) == len(small_dataset) - 1
        assert all(task.task_id != first_task for task in remaining)

    def test_reset_clears_everything(self, platform, small_dataset):
        worker_id = platform.worker_pool.worker_ids[0]
        platform.execute_assignment({worker_id: [small_dataset.tasks[0].task_id]})
        platform.reset()
        assert len(platform.answers) == 0
        assert platform.budget.spent == 0
        assert platform.stats.assignments == 0
        assert platform.assignments == []


class TestDefaultDistanceModel:
    def test_platform_builds_distance_model_from_dataset(self, small_dataset, worker_pool):
        from repro.crowd.budget import Budget
        from repro.crowd.platform import CrowdPlatform

        platform = CrowdPlatform(
            dataset=small_dataset,
            worker_pool=worker_pool,
            budget=Budget(total=10),
        )
        assert platform.distance_model.max_distance == pytest.approx(
            small_dataset.max_distance
        )
