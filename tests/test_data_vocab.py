"""Tests for repro.data.vocab."""

import numpy as np
import pytest

from repro.data.vocab import CATEGORY_LABELS, LabelVocabulary, PoiNamePool


class TestLabelVocabulary:
    def test_categories_sorted(self):
        vocab = LabelVocabulary()
        assert list(vocab.categories) == sorted(vocab.categories)
        assert set(vocab.categories) == set(CATEGORY_LABELS)

    def test_correct_labels_from_category_pool(self):
        vocab = LabelVocabulary()
        rng = np.random.default_rng(1)
        labels = vocab.correct_labels("park", 4, rng)
        assert len(labels) == 4
        assert len(set(labels)) == 4
        assert all(label in CATEGORY_LABELS["park"] for label in labels)

    def test_correct_labels_unknown_category(self):
        with pytest.raises(KeyError):
            LabelVocabulary().correct_labels("casino", 2, np.random.default_rng(1))

    def test_correct_labels_too_many(self):
        vocab = LabelVocabulary()
        with pytest.raises(ValueError):
            vocab.correct_labels("park", 100, np.random.default_rng(1))

    def test_distractors_avoid_category_and_forbidden(self):
        vocab = LabelVocabulary()
        rng = np.random.default_rng(2)
        forbidden = ["museum"]
        distractors = vocab.distractor_labels("park", 6, rng, forbidden=forbidden)
        assert len(distractors) == 6
        assert len(set(distractors)) == 6
        assert all(label not in CATEGORY_LABELS["park"] for label in distractors)
        assert "museum" not in distractors

    def test_distractors_too_many(self):
        vocab = LabelVocabulary(pools={"a": ("x",), "b": ("y",)})
        with pytest.raises(ValueError):
            vocab.distractor_labels("a", 5, np.random.default_rng(1))

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            LabelVocabulary(pools={})

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            LabelVocabulary(pools={"a": ("x", "x")})


class TestPoiNamePool:
    def test_names_are_unique(self):
        pool = PoiNamePool()
        rng = np.random.default_rng(3)
        names = [pool.next_name("park", rng) for _ in range(60)]
        assert len(set(names)) == len(names)

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            PoiNamePool().next_name("casino", np.random.default_rng(1))

    def test_exhaustion_falls_back_to_ordinals(self):
        pool = PoiNamePool(stems={"park": ("Park",)}, districts=("Only",))
        rng = np.random.default_rng(4)
        first = pool.next_name("park", rng)
        second = pool.next_name("park", rng)
        third = pool.next_name("park", rng)
        assert first == "Only Park"
        assert second != first
        assert third not in (first, second)
