"""Tests for repro.analysis.poi_analysis (Figure 8)."""

import pytest

from repro.analysis.poi_analysis import (
    REVIEW_CLASSES,
    poi_influence_curves,
    review_count_class,
)


class TestReviewCountClass:
    def test_class_boundaries(self):
        assert review_count_class(2501) == "Rev>2500"
        assert review_count_class(2500) == "Rev>1000"
        assert review_count_class(1001) == "Rev>1000"
        assert review_count_class(501) == "Rev>500"
        assert review_count_class(500) == "Rev<500"
        assert review_count_class(0) == "Rev<500"

    def test_all_classes_covered(self):
        assert set(REVIEW_CLASSES) == {"Rev>2500", "Rev>1000", "Rev>500", "Rev<500"}


class TestPoiInfluenceCurves:
    def test_one_curve_per_class(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        curves = poi_influence_curves(
            collected_answers, small_dataset, worker_pool.workers, distance_model
        )
        assert [curve.review_class for curve in curves] == list(REVIEW_CLASSES)

    def test_values_valid(self, collected_answers, small_dataset, worker_pool, distance_model):
        curves = poi_influence_curves(
            collected_answers, small_dataset, worker_pool.workers, distance_model
        )
        for curve in curves:
            assert len(curve.accuracies) == 5
            for value in curve.accuracies:
                assert value is None or 0.0 <= value <= 1.0

    def test_answer_counts_sum_to_corpus(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        curves = poi_influence_curves(
            collected_answers, small_dataset, worker_pool.workers, distance_model
        )
        assert sum(curve.answer_count for curve in curves) == len(collected_answers)

    def test_empty_answers(self, small_dataset, worker_pool, distance_model):
        from repro.data.models import AnswerSet

        curves = poi_influence_curves(
            AnswerSet(), small_dataset, worker_pool.workers, distance_model
        )
        assert all(curve.answer_count == 0 for curve in curves)
        assert all(all(v is None for v in curve.accuracies) for curve in curves)

    def test_custom_bin_count(self, collected_answers, small_dataset, worker_pool, distance_model):
        curves = poi_influence_curves(
            collected_answers,
            small_dataset,
            worker_pool.workers,
            distance_model,
            num_bins=3,
        )
        assert all(len(curve.accuracies) == 3 for curve in curves)
