"""Integration tests: the full pipeline on a small campaign.

These tie every subsystem together the way the benchmark harness and the
examples do: generate a dataset, simulate a crowd, run the alternating
framework with each assignment strategy, and check the qualitative relations
the paper reports (quality-aware inference beats majority voting on aggregate,
accuracy grows with budget, AccOpt never trails Random by much).
"""

from __future__ import annotations

import pytest

from repro.assign.random_assigner import RandomAssigner
from repro.baselines.dawid_skene import DawidSkeneInference
from repro.baselines.majority_vote import MajorityVoteInference
from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.data.generators import DatasetSpec, generate_dataset
from repro.framework.config import FrameworkConfig
from repro.framework.experiment import (
    build_distance_model,
    build_platform,
    build_worker_pool,
    compare_inference_models,
    default_inference_factories,
)
from repro.framework.framework import PoiLabellingFramework
from repro.framework.metrics import labelling_accuracy
from repro.spatial.bbox import BEIJING_BBOX


@pytest.fixture(scope="module")
def campaign_dataset():
    spec = DatasetSpec(
        name="Campaign",
        num_tasks=30,
        labels_per_task=6,
        bbox=BEIJING_BBOX,
        metric="euclidean",
        num_clusters=4,
    )
    return generate_dataset(spec, seed=42)


@pytest.fixture(scope="module")
def campaign_corpus(campaign_dataset):
    platform = build_platform(campaign_dataset, budget=200, seed=13)
    answers = platform.collect_batch_answers(answers_per_task=5, seed=13)
    return platform, answers


class TestInferencePipeline:
    def test_all_three_methods_beat_chance(self, campaign_dataset, campaign_corpus):
        platform, answers = campaign_corpus
        for model in (
            MajorityVoteInference(campaign_dataset.tasks),
            DawidSkeneInference(campaign_dataset.tasks),
            LocationAwareInference(
                campaign_dataset.tasks,
                platform.worker_pool.workers,
                platform.distance_model,
            ),
        ):
            model.fit(answers)
            accuracy = labelling_accuracy(model.predict_all(), campaign_dataset.tasks)
            assert accuracy > 0.6

    def test_im_competitive_with_baselines(self, campaign_dataset, campaign_corpus):
        platform, answers = campaign_corpus
        factories = default_inference_factories(
            campaign_dataset, platform.worker_pool, platform.distance_model
        )
        result = compare_inference_models(
            campaign_dataset, answers, [len(answers)], factories, seed=3
        )
        im = result.accuracy["IM"][0]
        mv = result.accuracy["MV"][0]
        em = result.accuracy["EM"][0]
        # The location-aware model must not trail either baseline materially.
        assert im >= mv - 0.02
        assert im >= em - 0.02

    def test_accuracy_grows_with_budget(self, campaign_dataset, campaign_corpus):
        platform, answers = campaign_corpus
        factories = default_inference_factories(
            campaign_dataset, platform.worker_pool, platform.distance_model
        )
        budgets = [40, len(answers)]
        result = compare_inference_models(
            campaign_dataset, answers, budgets, factories, seed=4
        )
        assert result.accuracy["IM"][1] >= result.accuracy["IM"][0] - 0.03


class TestAssignmentPipeline:
    def _run(self, campaign_dataset, assigner_name: str, seed: int = 77) -> float:
        pool = build_worker_pool(campaign_dataset, seed=seed)
        platform = build_platform(
            campaign_dataset, budget=120, worker_pool=pool, workers_per_round=4, seed=seed
        )
        distance_model = platform.distance_model
        config = FrameworkConfig(
            budget=120,
            tasks_per_worker=2,
            workers_per_round=4,
            evaluation_checkpoints=(60, 120),
            full_refresh_interval=40,
            inference=InferenceConfig(max_iterations=25),
        )
        inference = LocationAwareInference(
            campaign_dataset.tasks, pool.workers, distance_model, config=config.inference
        )
        if assigner_name == "AccOpt":
            assigner = AccOptAssigner(campaign_dataset.tasks, pool.workers, distance_model)
        else:
            assigner = RandomAssigner(campaign_dataset.tasks, pool.workers, seed=seed)
        framework = PoiLabellingFramework(platform, inference, assigner, config=config)
        return framework.run().final_accuracy

    def test_accopt_competitive_with_random(self, campaign_dataset):
        accopt = self._run(campaign_dataset, "AccOpt")
        random_acc = self._run(campaign_dataset, "Random")
        # On a single small campaign the gap is noisy, but AccOpt must not lose badly.
        assert accopt >= random_acc - 0.05

    def test_framework_uses_full_budget(self, campaign_dataset):
        pool = build_worker_pool(campaign_dataset, seed=5)
        platform = build_platform(
            campaign_dataset, budget=40, worker_pool=pool, workers_per_round=4, seed=5
        )
        config = FrameworkConfig(
            budget=40,
            tasks_per_worker=2,
            workers_per_round=4,
            evaluation_checkpoints=(40,),
            inference=InferenceConfig(max_iterations=15),
        )
        inference = LocationAwareInference(
            campaign_dataset.tasks, pool.workers, platform.distance_model,
            config=config.inference,
        )
        assigner = AccOptAssigner(
            campaign_dataset.tasks, pool.workers, platform.distance_model
        )
        result = PoiLabellingFramework(platform, inference, assigner, config=config).run()
        assert result.assignments_spent == 40


class TestSerialisationPipeline:
    def test_round_trip_preserves_inference_result(self, campaign_dataset, campaign_corpus, tmp_path):
        from repro.data.io import load_answers, load_dataset, save_answers, save_dataset

        platform, answers = campaign_corpus
        dataset_path = save_dataset(campaign_dataset, tmp_path / "dataset.json")
        answers_path = save_answers(answers, tmp_path / "answers.json")

        reloaded_dataset = load_dataset(dataset_path)
        reloaded_answers = load_answers(answers_path)

        original = MajorityVoteInference(campaign_dataset.tasks).fit(answers)
        reloaded = MajorityVoteInference(reloaded_dataset.tasks).fit(reloaded_answers)
        original_accuracy = labelling_accuracy(original.predict_all(), campaign_dataset.tasks)
        reloaded_accuracy = labelling_accuracy(reloaded.predict_all(), reloaded_dataset.tasks)
        assert original_accuracy == pytest.approx(reloaded_accuracy)
