"""Tests for repro.baselines.majority_vote."""

import numpy as np
import pytest

from repro.baselines.majority_vote import MajorityVoteInference
from repro.data.models import Answer, AnswerSet


class TestMajorityVote:
    def test_unfitted_query_raises(self, small_dataset):
        model = MajorityVoteInference(small_dataset.tasks)
        with pytest.raises(RuntimeError):
            model.label_probabilities(small_dataset.tasks[0].task_id)

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            MajorityVoteInference([])

    def test_probability_is_vote_fraction(self, small_dataset):
        task = small_dataset.tasks[0]
        n = task.num_labels
        answers = AnswerSet(
            [
                Answer("w1", task.task_id, tuple([1] * n)),
                Answer("w2", task.task_id, tuple([1] + [0] * (n - 1))),
                Answer("w3", task.task_id, tuple([0] * n)),
            ]
        )
        model = MajorityVoteInference(small_dataset.tasks).fit(answers)
        probs = model.label_probabilities(task.task_id)
        assert probs[0] == pytest.approx(2.0 / 3.0)
        assert probs[1] == pytest.approx(1.0 / 3.0)

    def test_unanswered_task_gets_half(self, small_dataset):
        model = MajorityVoteInference(small_dataset.tasks).fit(AnswerSet())
        probs = model.label_probabilities(small_dataset.tasks[1].task_id)
        assert np.allclose(probs, 0.5)

    def test_predictions_follow_majority(self, small_dataset):
        task = small_dataset.tasks[0]
        n = task.num_labels
        answers = AnswerSet(
            [
                Answer("w1", task.task_id, tuple([1] * n)),
                Answer("w2", task.task_id, tuple([1] * n)),
                Answer("w3", task.task_id, tuple([0] * n)),
            ]
        )
        model = MajorityVoteInference(small_dataset.tasks).fit(answers)
        assert np.all(model.predict(task.task_id) == 1)

    def test_wrong_label_count_rejected(self, small_dataset):
        task = small_dataset.tasks[0]
        answers = AnswerSet([Answer("w1", task.task_id, (1,))])
        with pytest.raises(ValueError):
            MajorityVoteInference(small_dataset.tasks).fit(answers)

    def test_unknown_task_query_raises(self, small_dataset):
        model = MajorityVoteInference(small_dataset.tasks).fit(AnswerSet())
        with pytest.raises(KeyError):
            model.label_probabilities("ghost")

    def test_predict_all_covers_every_task(self, small_dataset, collected_answers):
        model = MajorityVoteInference(small_dataset.tasks).fit(collected_answers)
        predictions = model.predict_all()
        assert set(predictions) == {task.task_id for task in small_dataset.tasks}

    def test_accuracy_beats_chance_on_simulated_crowd(self, small_dataset, collected_answers):
        from repro.framework.metrics import labelling_accuracy

        model = MajorityVoteInference(small_dataset.tasks).fit(collected_answers)
        assert labelling_accuracy(model.predict_all(), small_dataset.tasks) > 0.55

    def test_refit_replaces_previous_estimate(self, small_dataset):
        task = small_dataset.tasks[0]
        n = task.num_labels
        model = MajorityVoteInference(small_dataset.tasks)
        model.fit(AnswerSet([Answer("w1", task.task_id, tuple([1] * n))]))
        assert model.label_probabilities(task.task_id)[0] == pytest.approx(1.0)
        model.fit(AnswerSet([Answer("w1", task.task_id, tuple([0] * n))]))
        assert model.label_probabilities(task.task_id)[0] == pytest.approx(0.0)
