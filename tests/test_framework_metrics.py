"""Tests for repro.framework.metrics."""

import numpy as np
import pytest

from repro.data.models import Answer, AnswerSet
from repro.framework.metrics import (
    answer_accuracy_against_truth,
    assignment_distribution,
    average_label_accuracy,
    labelling_accuracy,
    worker_average_accuracy,
)


class TestLabellingAccuracy:
    def test_perfect_predictions(self, small_dataset):
        predictions = {task.task_id: list(task.truth) for task in small_dataset.tasks}
        assert labelling_accuracy(predictions, small_dataset.tasks) == pytest.approx(1.0)

    def test_inverted_predictions(self, small_dataset):
        predictions = {
            task.task_id: [1 - v for v in task.truth] for task in small_dataset.tasks
        }
        assert labelling_accuracy(predictions, small_dataset.tasks) == pytest.approx(0.0)

    def test_paper_example(self, small_dataset):
        """The paper's example: 10 labels, first 3 true; predicting labels 1 and 4
        as correct scores 7/10 on that task."""
        from repro.data.models import POI, Task
        from repro.spatial.geometry import GeoPoint

        task = Task(
            task_id="example",
            poi=POI("p", "P", GeoPoint(0, 0)),
            labels=tuple(f"l{i}" for i in range(10)),
            truth=(1, 1, 1, 0, 0, 0, 0, 0, 0, 0),
        )
        predictions = {"example": [1, 0, 0, 1, 0, 0, 0, 0, 0, 0]}
        assert labelling_accuracy(predictions, [task]) == pytest.approx(0.7)

    def test_missing_task_counts_as_zero(self, small_dataset):
        predictions = {small_dataset.tasks[0].task_id: list(small_dataset.tasks[0].truth)}
        accuracy = labelling_accuracy(predictions, small_dataset.tasks)
        assert accuracy == pytest.approx(1.0 / len(small_dataset))

    def test_wrong_shape_raises(self, small_dataset):
        predictions = {small_dataset.tasks[0].task_id: [1]}
        with pytest.raises(ValueError):
            labelling_accuracy(predictions, small_dataset.tasks)

    def test_empty_tasks_raise(self):
        with pytest.raises(ValueError):
            labelling_accuracy({}, [])


class TestAnswerAccuracy:
    def test_per_answer_accuracy(self, small_dataset):
        task = small_dataset.tasks[0]
        answers = AnswerSet([Answer("w1", task.task_id, tuple(task.truth))])
        accuracies = answer_accuracy_against_truth(answers, small_dataset)
        assert accuracies[("w1", task.task_id)] == pytest.approx(1.0)

    def test_unknown_task_raises(self, small_dataset):
        answers = AnswerSet([Answer("w1", "ghost", (1, 0))])
        with pytest.raises(KeyError):
            answer_accuracy_against_truth(answers, small_dataset)

    def test_worker_average(self, small_dataset):
        t1, t2 = small_dataset.tasks[0], small_dataset.tasks[1]
        answers = AnswerSet(
            [
                Answer("w1", t1.task_id, tuple(t1.truth)),
                Answer("w1", t2.task_id, tuple(1 - v for v in t2.truth)),
            ]
        )
        averages = worker_average_accuracy(answers, small_dataset)
        assert averages["w1"] == pytest.approx(0.5)


class TestAssignmentDistribution:
    def test_buckets(self, small_dataset):
        answers = AnswerSet()
        # First task: 1 answer (few). Second: 4 answers (medium). Third: 8 (many).
        tasks = small_dataset.tasks
        answers.add(Answer("w0", tasks[0].task_id, tuple([0] * tasks[0].num_labels)))
        for i in range(4):
            answers.add(Answer(f"w{i}", tasks[1].task_id, tuple([0] * tasks[1].num_labels)))
        for i in range(8):
            answers.add(Answer(f"w{i}", tasks[2].task_id, tuple([0] * tasks[2].num_labels)))
        few, medium, many = assignment_distribution(answers, small_dataset)
        n = len(small_dataset)
        # All the remaining tasks have zero answers and land in the "few" bucket.
        assert few == pytest.approx(100.0 * (n - 2) / n)
        assert medium == pytest.approx(100.0 / n)
        assert many == pytest.approx(100.0 / n)
        assert few + medium + many == pytest.approx(100.0)

    def test_invalid_boundaries(self, small_dataset):
        with pytest.raises(ValueError):
            assignment_distribution(AnswerSet(), small_dataset, boundaries=(0, 5))
        with pytest.raises(ValueError):
            assignment_distribution(AnswerSet(), small_dataset, boundaries=(5, 3))


class TestAverageLabelAccuracy:
    def test_perfectly_confident_correct_probabilities(self, small_dataset):
        probabilities = {
            task.task_id: [float(v) for v in task.truth] for task in small_dataset.tasks
        }
        assert average_label_accuracy(probabilities, small_dataset.tasks) == pytest.approx(1.0)

    def test_uninformative_probabilities(self, small_dataset):
        probabilities = {
            task.task_id: [0.5] * task.num_labels for task in small_dataset.tasks
        }
        assert average_label_accuracy(probabilities, small_dataset.tasks) == pytest.approx(0.5)

    def test_missing_task_counts_as_half(self, small_dataset):
        value = average_label_accuracy({}, small_dataset.tasks)
        assert value == pytest.approx(0.5)

    def test_wrong_shape_raises(self, small_dataset):
        probabilities = {small_dataset.tasks[0].task_id: [0.5]}
        with pytest.raises(ValueError):
            average_label_accuracy(probabilities, small_dataset.tasks)

    def test_empty_tasks_raise(self):
        with pytest.raises(ValueError):
            average_label_accuracy({}, [])
