"""Open-world substrate tests: growable stores, incremental tensor, arrival.

Covers the PR-4 invariants:

* ``ArrayParameterStore`` growth — append then ``freeze``/``copy``/``.npz``
  round-trips equal a from-scratch build over the grown universe;
* the incrementally maintained ``AnswerTensor`` — a prefix build plus batched
  appends matches a full rebuild, re-answers update rows in place, and the
  live updater tensor stays equal to a rebuild after many micro-batches;
* the incremental updater with mid-stream worker/task arrival matches the
  per-record reference engine to <= 1e-9;
* open-world serving: first-sight registration through event payloads, the
  holdback serve-sim acceptance (>= 20% open-world answers with the final
  snapshot matching an offline fit on the full universe to <= 1e-6);
* multiprocessing sweeps: ``jobs > 1`` reproduces the serial results.
"""

import numpy as np
import pytest

from repro.assign.accopt import AccOptAssigner
from repro.core.em_kernel import AnswerTensor
from repro.core.incremental import IncrementalUpdater
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.core.params import ModelParameters, ArrayParameterStore
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.data.models import POI, Answer, AnswerSet, Task, Worker
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    IngestConfig,
    OnlineServingService,
    ServingConfig,
    SnapshotStore,
)
from repro.spatial.geometry import GeoPoint


def make_params():
    params = ModelParameters()
    params.workers["w1"] = params.worker("w1")  # footnote-3 prior
    params.tasks["t1"] = params.task("t1", num_labels=2)
    params.tasks["t2"] = params.task("t2", num_labels=3)
    return params


def assert_stores_equal(a: ArrayParameterStore, b: ArrayParameterStore):
    assert a.worker_ids == b.worker_ids
    assert a.task_ids == b.task_ids
    np.testing.assert_array_equal(a.label_offsets, b.label_offsets)
    np.testing.assert_array_equal(a.p_qualified, b.p_qualified)
    np.testing.assert_array_equal(a.distance_weights, b.distance_weights)
    np.testing.assert_array_equal(a.influence_weights, b.influence_weights)
    np.testing.assert_array_equal(a.label_probs, b.label_probs)


class TestGrowableStore:
    def test_append_matches_from_scratch_build(self):
        params = make_params()
        grown = params.to_array_store(["w1"], ["t1", "t2"], [2, 3])
        grown.add_worker("w2")
        grown.add_task("t3", 4)
        scratch = params.to_array_store(
            ["w1", "w2"], ["t1", "t2", "t3"], [2, 3, 4]
        )
        assert_stores_equal(grown, scratch)

    def test_npz_round_trip_after_appends(self, tmp_path):
        params = make_params()
        grown = params.to_array_store(["w1"], ["t1"], [2])
        for index in range(10):  # force several capacity doublings
            grown.add_worker(f"new-w{index}", p_qualified=0.5 + 0.01 * index)
            grown.add_task(f"new-t{index}", 1 + index % 3)
        path = grown.save_npz(tmp_path / "grown.npz")
        restored = ArrayParameterStore.load_npz(path)
        assert_stores_equal(grown, restored)

    def test_copy_after_appends_is_compact_and_independent(self):
        grown = make_params().to_array_store(["w1"], ["t1"], [2])
        grown.add_worker("w2", p_qualified=0.25)
        clone = grown.copy()
        assert_stores_equal(grown, clone)
        clone.p_qualified[1] = 0.75
        assert grown.p_qualified[1] == pytest.approx(0.25)

    def test_freeze_blocks_writes_and_growth(self):
        store = make_params().to_array_store(["w1"], ["t1"], [2])
        store.freeze()
        with pytest.raises((ValueError, RuntimeError)):
            store.p_qualified[0] = 0.0
        with pytest.raises(ValueError):
            store.add_worker("w2")
        with pytest.raises(ValueError):
            store.add_task("t9", 2)
        # A copy thaws: the fresh buffers are writable and growable again.
        clone = store.copy()
        clone.add_worker("w2")
        assert clone.has_worker("w2")

    def test_duplicate_ids_rejected(self):
        store = make_params().to_array_store(["w1"], ["t1"], [2])
        with pytest.raises(ValueError):
            store.add_worker("w1")
        with pytest.raises(ValueError):
            store.add_task("t1", 2)

    def test_index_lookups_cover_appended_entities(self):
        store = make_params().to_array_store(["w1"], ["t1"], [2])
        assert store.add_worker("w2") == 1
        assert store.add_task("t2", 3) == 1
        assert store.index_of_worker("w2") == 1
        assert store.index_of_task("t2") == 1
        assert store.has_worker("w2") and store.has_task("t2")
        np.testing.assert_array_equal(store.label_offsets, [0, 2, 5])


def assert_tensors_equal(a: AnswerTensor, b: AnswerTensor, atol=1e-12):
    assert a.worker_ids == b.worker_ids
    assert a.task_ids == b.task_ids
    np.testing.assert_array_equal(a.num_labels, b.num_labels)
    np.testing.assert_array_equal(a.label_offsets, b.label_offsets)
    np.testing.assert_array_equal(a.a_worker, b.a_worker)
    np.testing.assert_array_equal(a.a_task, b.a_task)
    np.testing.assert_allclose(a.distances, b.distances, rtol=0, atol=atol)
    np.testing.assert_allclose(a.f_values, b.f_values, rtol=0, atol=atol)
    np.testing.assert_array_equal(a.r_answer, b.r_answer)
    np.testing.assert_array_equal(a.r_worker, b.r_worker)
    np.testing.assert_array_equal(a.r_task, b.r_task)
    np.testing.assert_array_equal(a.r_label, b.r_label)
    np.testing.assert_array_equal(a.responses, b.responses)
    np.testing.assert_array_equal(a.task_of_label, b.task_of_label)
    np.testing.assert_array_equal(a.a_label_start, b.a_label_start)


class TestIncrementalTensor:
    def _build(self, inference, answers):
        return AnswerTensor.build(
            answers,
            inference._tasks,
            inference._workers,
            inference.distance_model,
            inference.config.function_set,
        )

    def test_appends_match_full_rebuild(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        all_answers = list(collected_answers)
        prefix, rest = all_answers[:10], all_answers[10:]
        live = self._build(inference, AnswerSet(prefix))
        live.enable_row_tracking()
        for start in range(0, len(rest), 7):  # uneven micro-batches
            live.append_answers(
                rest[start : start + 7],
                inference._tasks,
                inference._workers,
                distance_model,
                inference.config.function_set,
            )
        rebuilt = self._build(inference, AnswerSet(all_answers))
        assert_tensors_equal(live, rebuilt)

    def test_row_tracking_extends_in_place(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        all_answers = list(collected_answers)
        live = self._build(inference, AnswerSet(all_answers[:5]))
        live.enable_row_tracking()
        result = live.append_answers(
            all_answers[5:9],
            inference._tasks,
            inference._workers,
            distance_model,
            inference.config.function_set,
        )
        np.testing.assert_array_equal(result.rows, [5, 6, 7, 8])
        for row in result.rows:
            widx = int(live.a_worker[row])
            tidx = int(live.a_task[row])
            assert int(row) in live.rows_of_worker(widx)
            assert int(row) in live.rows_of_task(tidx)

    def test_reanswer_updates_row_in_place(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        all_answers = list(collected_answers)
        live = self._build(inference, AnswerSet(all_answers))
        live.enable_row_tracking()
        original = all_answers[0]
        flipped = Answer(
            worker_id=original.worker_id,
            task_id=original.task_id,
            responses=tuple(1 - r for r in original.responses),
        )
        before_rows = live.num_answers
        result = live.append_answers(
            [flipped],
            inference._tasks,
            inference._workers,
            distance_model,
            inference.config.function_set,
        )
        assert live.num_answers == before_rows  # replaced, not appended
        row = int(result.rows[0])
        start = int(live.a_label_start[row])
        np.testing.assert_array_equal(
            live.responses[start : start + flipped.num_labels],
            np.asarray(flipped.responses, dtype=float),
        )

    def test_same_batch_resubmission_collapses_onto_one_row(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        all_answers = list(collected_answers)
        live = self._build(inference, AnswerSet(all_answers[:5]))
        live.enable_row_tracking()
        fresh = all_answers[5]
        resubmitted = Answer(
            worker_id=fresh.worker_id,
            task_id=fresh.task_id,
            responses=tuple(1 - r for r in fresh.responses),
        )
        result = live.append_answers(
            [fresh, resubmitted],  # same new pair twice within one batch
            inference._tasks,
            inference._workers,
            distance_model,
            inference.config.function_set,
        )
        assert live.num_answers == 6  # one row, not two
        assert result.rows[0] == result.rows[1] == 5
        # Last answer wins, mirroring AnswerSet.add.
        answers = AnswerSet(all_answers[:5])
        answers.add(resubmitted)
        rebuilt = self._build(inference, answers)
        assert_tensors_equal(live, rebuilt)

    def test_unseen_entities_register_on_first_sight(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        new_worker = Worker("late-worker", (GeoPoint(39.95, 116.35),))
        inference.add_worker(new_worker)
        live = self._build(inference, collected_answers)
        live.enable_row_tracking()
        task = small_dataset.tasks[0]
        answer = Answer("late-worker", task.task_id, tuple([1] * task.num_labels))
        result = live.append_answers(
            [answer],
            inference._tasks,
            inference._workers,
            distance_model,
            inference.config.function_set,
        )
        assert result.new_worker_ids == ("late-worker",)
        assert live.worker_ids[-1] == "late-worker"
        assert live.rows_of_worker(live.worker_row("late-worker")) == [
            live.num_answers - 1
        ]


def assert_parameters_close(a: ModelParameters, b: ModelParameters, atol=1e-9):
    assert set(a.workers) == set(b.workers)
    assert set(a.tasks) == set(b.tasks)
    for worker_id, worker in a.workers.items():
        other = b.workers[worker_id]
        np.testing.assert_allclose(worker.p_qualified, other.p_qualified, atol=atol)
        np.testing.assert_allclose(
            worker.distance_weights, other.distance_weights, atol=atol
        )
    for task_id, task in a.tasks.items():
        other = b.tasks[task_id]
        np.testing.assert_allclose(task.label_probs, other.label_probs, atol=atol)
        np.testing.assert_allclose(
            task.influence_weights, other.influence_weights, atol=atol
        )


class TestOpenWorldUpdater:
    def _new_entities(self, small_dataset):
        new_worker = Worker("joined-w", (GeoPoint(39.93, 116.41),))
        base = small_dataset.tasks[0]
        new_task = Task(
            task_id="joined-t",
            poi=POI(
                poi_id="joined-poi",
                name="Joined POI",
                location=GeoPoint(39.97, 116.38),
            ),
            labels=("a", "b", "c"),
            truth=(1, 0, 1),
        )
        assert base.task_id != new_task.task_id
        return new_worker, new_task

    def test_engines_agree_with_midstream_arrival(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        new_worker, new_task = self._new_entities(small_dataset)
        known_worker = worker_pool.worker_ids[0]
        known_task = small_dataset.tasks[1]
        new_answers = [
            Answer("joined-w", known_task.task_id, (1,) * known_task.num_labels),
            Answer(known_worker, "joined-t", (1, 0, 1)),
            Answer("joined-w", "joined-t", (1, 1, 0)),
        ]

        seed_model = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(engine="reference"),
        )
        seed_params = seed_model.run_em(collected_answers).parameters

        updated = {}
        for engine in ("reference", "vectorized"):
            model = LocationAwareInference(
                small_dataset.tasks,
                worker_pool.workers,
                distance_model,
                config=InferenceConfig(engine=engine),
            )
            model.add_worker(new_worker)
            model.add_task(new_task)
            model._parameters = seed_params.copy()
            model._fitted = True
            updater = IncrementalUpdater(model, local_iterations=2)
            grown = collected_answers.copy()
            for answer in new_answers:
                grown.add(answer)
            updated[engine] = updater.apply(grown, new_answers)

        assert "joined-w" in updated["vectorized"].workers
        assert "joined-t" in updated["vectorized"].tasks
        assert_parameters_close(updated["reference"], updated["vectorized"])

    def test_live_tensor_tracks_many_micro_batches(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        updater = IncrementalUpdater(model, full_refresh_interval=1000)
        simulator = AnswerSimulator(distance_model, noise=0.0)
        answers = collected_answers.copy()
        batch = []
        for profile in worker_pool:
            for task in small_dataset.tasks:
                if answers.get(profile.worker_id, task.task_id) is None:
                    batch.append(simulator.sample_answer(profile, task, seed=5))
                    break
        for start in range(0, len(batch), 2):
            chunk = batch[start : start + 2]
            for answer in chunk:
                answers.add(answer)
            updater.apply(answers, chunk)
        rebuilt = AnswerTensor.build(
            answers,
            model._tasks,
            model._workers,
            distance_model,
            model.config.function_set,
        )
        assert_tensors_equal(updater.live_tensor, rebuilt)
        # The live store covers exactly the tensor universe, row-aligned.
        assert updater.live_store.worker_ids == updater.live_tensor.worker_ids
        assert updater.live_store.task_ids == updater.live_tensor.task_ids


class TestOpenWorldIngest:
    def _ingestor(self, small_dataset, worker_pool, distance_model):
        startup_tasks = small_dataset.tasks[:8]
        startup_workers = worker_pool.workers[:5]
        inference = LocationAwareInference(
            startup_tasks, startup_workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=32)
        config = IngestConfig(
            max_batch_answers=4, max_batch_delay=100.0, full_refresh_interval=1000
        )
        return AnswerIngestor(inference, snapshots, config=config), snapshots

    def test_first_sight_registration_grows_snapshots(
        self, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = self._ingestor(small_dataset, worker_pool, distance_model)
        simulator = AnswerSimulator(distance_model, noise=0.0)
        held_workers = worker_pool.workers[5:]
        held_tasks = small_dataset.tasks[8:]
        events = []
        index = 0
        # Every worker answers a rotating slice of three tasks so the stream
        # touches the whole universe, held-back entities included.
        for offset, profile in enumerate(worker_pool):
            for step in range(3):
                task = small_dataset.tasks[(offset * 3 + step) % len(small_dataset.tasks)]
                events.append(
                    AnswerEvent(
                        simulator.sample_answer(profile, task, seed=100 + index),
                        time=0.1 * index,
                        worker=(
                            profile.worker
                            if profile.worker in held_workers
                            else None
                        ),
                        task=task if task in held_tasks else None,
                    )
                )
                index += 1
        universe_sizes = []
        for event in events:
            snapshot = ingest.submit(event)
            if snapshot is not None:
                universe_sizes.append(
                    (snapshot.store.num_workers, snapshot.store.num_tasks)
                )
        ingest.flush()
        assert ingest.stats.workers_registered > 0 or ingest.stats.tasks_registered > 0
        # The published entity universe only ever grows between versions.
        for earlier, later in zip(universe_sizes, universe_sizes[1:]):
            assert later[0] >= earlier[0]
            assert later[1] >= earlier[1]
        latest = snapshots.latest()
        assert latest.store.num_workers == 5 + ingest.stats.workers_registered
        assert latest.store.num_tasks == 8 + ingest.stats.tasks_registered

    def test_reference_engine_publishes_without_live_tensor(
        self, small_dataset, worker_pool, distance_model
    ):
        """The reference oracle path flattens directly — no per-publish sync."""
        inference = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(engine="reference"),
        )
        snapshots = SnapshotStore(max_snapshots=32)
        config = IngestConfig(
            max_batch_answers=4, max_batch_delay=100.0, full_refresh_interval=8
        )
        ingest = AnswerIngestor(inference, snapshots, config=config)
        simulator = AnswerSimulator(distance_model, noise=0.0)
        index = 0
        for profile in worker_pool:
            for task in small_dataset.tasks[:3]:
                ingest.submit(
                    AnswerEvent(
                        simulator.sample_answer(profile, task, seed=300 + index),
                        time=0.1 * index,
                    )
                )
                index += 1
        ingest.flush()
        assert ingest.stats.incremental_updates > 0
        assert ingest._updater.live_tensor is None  # never built on this path
        latest = snapshots.latest()
        assert latest is not None
        assert latest.store.num_tasks == 3

    def test_unknown_entity_without_payload_is_rejected(
        self, small_dataset, worker_pool, distance_model
    ):
        ingest, _ = self._ingestor(small_dataset, worker_pool, distance_model)
        stranger = Answer(
            "stranger", small_dataset.tasks[0].task_id,
            (1,) * small_dataset.tasks[0].num_labels,
        )
        ingest.submit(AnswerEvent(stranger, time=0.0))
        with pytest.raises(KeyError, match="stranger"):
            ingest.flush()


class TestOpenWorldService:
    def _platform(self, small_dataset, worker_pool, distance_model, budget=80):
        return CrowdPlatform(
            dataset=small_dataset,
            worker_pool=worker_pool,
            budget=Budget(total=budget),
            distance_model=distance_model,
            answer_simulator=AnswerSimulator(distance_model, noise=0.05),
            arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
            seed=7,
        )

    def test_holdback_stream_meets_open_world_acceptance(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = self._platform(small_dataset, worker_pool, distance_model)
        config = ServingConfig(
            tasks_per_worker=2,
            ingest=IngestConfig(
                max_batch_answers=8, max_batch_delay=4.0, full_refresh_interval=40
            ),
            holdback_worker_fraction=0.4,
            holdback_task_fraction=0.25,
            tasks_released_per_round=2,
            final_refresh_warm_start=False,
            seed=13,
        )
        service = OnlineServingService(platform, config=config)
        report = service.run()

        assert report.workers_joined > 0
        assert report.tasks_joined > 0
        assert report.open_world_fraction >= 0.2
        assert report.answers_ingested == len(platform.answers)

        # The final snapshot (cold final refresh) matches an offline fit on
        # the full universe: open-world serving converges to the same
        # estimates the closed-world batch pipeline would produce.
        offline = LocationAwareInference(
            platform.dataset.tasks,
            platform.workers,
            platform.distance_model,
            config=config.inference,
        )
        offline.fit(platform.answers)
        snapshot_view = service.snapshots.latest().as_model()
        assert_parameters_close(
            offline.parameters, snapshot_view, atol=1e-6
        )

    def test_closed_world_default_is_unchanged(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = self._platform(small_dataset, worker_pool, distance_model, budget=40)
        service = OnlineServingService(
            platform,
            config=ServingConfig(
                tasks_per_worker=2,
                ingest=IngestConfig(
                    max_batch_answers=8, max_batch_delay=4.0, full_refresh_interval=40
                ),
                seed=13,
            ),
        )
        report = service.run()
        assert report.workers_joined == 0
        assert report.tasks_joined == 0
        assert report.open_world_answers == 0


class TestDynamicAssigners:
    def test_accopt_engines_agree_after_growth(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        startup_tasks = small_dataset.tasks[:8]
        startup_workers = worker_pool.workers[:5]
        late_tasks = small_dataset.tasks[8:]
        late_workers = worker_pool.workers[5:]

        assignments = {}
        for engine in ("vectorized", "reference"):
            assigner = AccOptAssigner(
                list(startup_tasks),
                list(startup_workers),
                distance_model,
                engine=engine,
            )
            assigner.update_parameters(model.parameters)
            # Warm the distance cache on the startup universe, then grow.
            assigner.assign([startup_workers[0].worker_id], 1, collected_answers)
            for task in late_tasks:
                assert assigner.add_task(task)
            for worker in late_workers:
                assert assigner.add_worker(worker)
            available = [w.worker_id for w in worker_pool.workers[3:]]
            assignments[engine] = assigner.assign(available, 2, AnswerSet())
        assert assignments["vectorized"] == assignments["reference"]

    def test_new_tasks_are_assignable(
        self, small_dataset, worker_pool, distance_model
    ):
        startup_tasks = small_dataset.tasks[:2]
        assigner = AccOptAssigner(
            list(startup_tasks), worker_pool.workers, distance_model
        )
        worker_id = worker_pool.worker_ids[0]
        answers = AnswerSet()
        # Saturate the startup tasks for this worker, then grow the universe.
        for task in startup_tasks:
            answers.add(Answer(worker_id, task.task_id, (1,) * task.num_labels))
        late = small_dataset.tasks[2]
        assigner.add_task(late)
        assignment = assigner.assign([worker_id], 1, answers)
        assert assignment[worker_id] == [late.task_id]


class TestParallelSweeps:
    def test_inference_sweep_matches_serial(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        from repro.framework.experiment import (
            compare_inference_models,
            default_inference_factories,
        )

        factories = default_inference_factories(
            small_dataset, worker_pool, distance_model
        )
        budgets = [12, 18, 24]
        serial = compare_inference_models(
            small_dataset, collected_answers, budgets, factories, seed=3, jobs=1
        )
        parallel = compare_inference_models(
            small_dataset, collected_answers, budgets, factories, seed=3, jobs=2
        )
        assert serial.budgets == parallel.budgets
        for name in factories:
            assert serial.accuracy[name] == pytest.approx(parallel.accuracy[name])

    def test_assigner_sweep_matches_serial(self, small_dataset, worker_pool):
        from repro.framework.config import FrameworkConfig
        from repro.framework.experiment import compare_assigners

        config = FrameworkConfig(
            budget=24,
            tasks_per_worker=2,
            workers_per_round=3,
            evaluation_checkpoints=(12, 24),
        )
        serial = compare_assigners(
            small_dataset, config, worker_pool=worker_pool, seed=11, jobs=1
        )
        parallel = compare_assigners(
            small_dataset, config, worker_pool=worker_pool, seed=11, jobs=2
        )
        assert set(serial.accuracy) == set(parallel.accuracy)
        for name, series in serial.accuracy.items():
            assert series == pytest.approx(parallel.accuracy[name])
