"""Tests for repro.core.incremental (incremental EM updates)."""

import pytest

from repro.core.incremental import IncrementalUpdater
from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import AnswerSet


@pytest.fixture()
def fitted_model(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    return model


def simulate_new_answers(small_dataset, worker_pool, distance_model, existing, count=4):
    """Produce a few fresh answers from workers that have not answered those tasks."""
    simulator = AnswerSimulator(distance_model, noise=0.0)
    new_answers = []
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if existing.get(profile.worker_id, task.task_id) is None:
                new_answers.append(simulator.sample_answer(profile, task, seed=99))
                break
        if len(new_answers) >= count:
            break
    return new_answers


class TestValidation:
    def test_invalid_intervals(self, fitted_model):
        with pytest.raises(ValueError):
            IncrementalUpdater(fitted_model, full_refresh_interval=0)
        with pytest.raises(ValueError):
            IncrementalUpdater(fitted_model, local_iterations=0)


class TestIncrementalUpdate:
    def test_empty_update_is_noop(self, fitted_model, collected_answers):
        updater = IncrementalUpdater(fitted_model)
        before = fitted_model.parameters
        after = updater.apply(collected_answers, [])
        assert after is before
        assert updater.answers_since_full_refresh == 0

    def test_updates_only_affected_entities(
        self, fitted_model, small_dataset, worker_pool, distance_model, collected_answers
    ):
        updater = IncrementalUpdater(fitted_model)
        before = fitted_model.parameters.copy()
        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers, count=2
        )
        answers = collected_answers.copy()
        for answer in new_answers:
            answers.add(answer)
        after = updater.apply(answers, new_answers)

        affected_workers = {a.worker_id for a in new_answers}
        affected_tasks = {a.task_id for a in new_answers}
        # Untouched workers keep their previous estimates bit-for-bit.
        for worker_id, params in before.workers.items():
            if worker_id not in affected_workers:
                assert after.workers[worker_id].p_qualified == pytest.approx(
                    params.p_qualified
                )
        for task_id, params in before.tasks.items():
            if task_id not in affected_tasks:
                assert after.tasks[task_id].label_probs == pytest.approx(
                    params.label_probs
                )

    def test_affected_entities_change(
        self, fitted_model, small_dataset, worker_pool, distance_model, collected_answers
    ):
        updater = IncrementalUpdater(fitted_model)
        before = fitted_model.parameters.copy()
        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers, count=3
        )
        answers = collected_answers.copy()
        for answer in new_answers:
            answers.add(answer)
        after = updater.apply(answers, new_answers)
        affected_tasks = {a.task_id for a in new_answers}
        changed = any(
            abs(
                float(
                    (after.tasks[task_id].label_probs - before.tasks[task_id].label_probs).max()
                )
            )
            > 0.0
            for task_id in affected_tasks
            if task_id in before.tasks
        )
        assert changed

    def test_counter_and_refresh_due(self, fitted_model, collected_answers, small_dataset, worker_pool, distance_model):
        updater = IncrementalUpdater(fitted_model, full_refresh_interval=3)
        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers, count=4
        )
        answers = collected_answers.copy()
        for answer in new_answers:
            answers.add(answer)
        updater.apply(answers, new_answers)
        assert updater.answers_since_full_refresh == 4
        assert updater.full_refresh_due
        updater.notify_full_refresh()
        assert updater.answers_since_full_refresh == 0
        assert not updater.full_refresh_due

    def test_incremental_close_to_full_em(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        """The incremental estimate should stay close to a full EM re-run."""
        from repro.framework.metrics import labelling_accuracy

        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        updater = IncrementalUpdater(model, local_iterations=3)

        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers, count=5
        )
        answers = collected_answers.copy()
        for answer in new_answers:
            answers.add(answer)
        updater.apply(answers, new_answers)
        incremental_accuracy = labelling_accuracy(model.predict_all(), small_dataset.tasks)

        fresh = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        fresh.fit(answers)
        full_accuracy = labelling_accuracy(fresh.predict_all(), small_dataset.tasks)
        assert abs(full_accuracy - incremental_accuracy) < 0.15


class TestLiveStateError:
    def test_external_fit_without_log_raises_typed_error(
        self, fitted_model, small_dataset, worker_pool, distance_model,
        collected_answers,
    ):
        """An updater joining an externally fitted model must be given the
        answer log (or a primed carryover) — silently refitting on the
        micro-batch alone would discard the estimate's history."""
        from repro.serving import LiveStateError, ServingStateError

        updater = IncrementalUpdater(fitted_model)
        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        with pytest.raises(LiveStateError) as excinfo:
            updater.apply(None, new_answers)
        assert isinstance(excinfo.value, ServingStateError)
        assert "prime_carryover" in str(excinfo.value)

    def test_passing_the_log_recovers(
        self, fitted_model, small_dataset, worker_pool, distance_model,
        collected_answers,
    ):
        updater = IncrementalUpdater(fitted_model)
        new_answers = simulate_new_answers(
            small_dataset, worker_pool, distance_model, collected_answers
        )
        answers = collected_answers.copy()
        for answer in new_answers:
            answers.add(answer)
        params = updater.apply(answers, new_answers)
        assert params is fitted_model.parameters
        assert updater.tensor_rebuilds == 1
