"""Integration tests: the telemetry substrate threaded through serving.

The unit behaviour of the metrics/trace primitives is covered by
``test_obs_metrics.py`` / ``test_obs_trace.py``; here we assert that the
serving pipeline actually *reports* — stage wall time, component counters,
the phase breakdown in the report, and the on-disk exports behind
``serve-sim --metrics-dir``.
"""

import json

import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    AnswerJournal,
    FaultInjector,
    GuardConfig,
    IngestConfig,
    OnlineServingService,
    ServingConfig,
    SnapshotStore,
)
from repro.serving.frontend import AssignmentFrontend
from repro.serving.guard import EventGuard


def make_events(small_dataset, worker_pool, distance_model, count, gap=0.1):
    simulator = AnswerSimulator(distance_model, noise=0.0)
    events = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if index >= count:
                return events
            events.append(
                AnswerEvent(
                    simulator.sample_answer(profile, task, seed=1000 + index),
                    time=gap * index,
                )
            )
            index += 1
    return events


def make_traced_ingestor(
    small_dataset, worker_pool, distance_model, tmp_path=None, guard=None, faults=None
):
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    snapshots = SnapshotStore()
    metrics = MetricsRegistry()
    tracer = Tracer(metrics, ring_capacity=64)
    journal = AnswerJournal(tmp_path / "journal") if tmp_path is not None else None
    ingestor = AnswerIngestor(
        inference,
        snapshots,
        config=IngestConfig(
            max_batch_answers=4, max_batch_delay=100.0, full_refresh_interval=8
        ),
        journal=journal,
        guard=guard,
        faults=faults,
        tracer=tracer,
    )
    return ingestor, snapshots, metrics, tracer


def make_platform(small_dataset, worker_pool, distance_model, budget=60):
    return CrowdPlatform(
        dataset=small_dataset,
        worker_pool=worker_pool,
        budget=Budget(total=budget),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
        seed=7,
    )


class TestIngestorTelemetry:
    def test_stage_totals_cover_the_pipeline(
        self, small_dataset, worker_pool, distance_model
    ):
        ingestor, _, metrics, tracer = make_traced_ingestor(
            small_dataset, worker_pool, distance_model
        )
        for event in make_events(small_dataset, worker_pool, distance_model, 12):
            ingestor.submit(event)
        ingestor.flush()

        totals = tracer.stage_totals()
        # 12 answers at refresh interval 8: both incremental applies and a
        # full refresh ran, and every update published a snapshot.
        assert totals["apply"] > 0.0
        assert totals["refresh"] > 0.0
        assert totals["publish"] > 0.0
        assert metrics.get("ingest_answers_total").value == 12.0
        assert metrics.get("ingest_batches_total", kind="incremental").value >= 1.0
        assert metrics.get("ingest_batches_total", kind="full_refresh").value >= 1.0
        assert metrics.get("em_localized_sweeps_total").value >= 1.0
        assert metrics.get("em_refresh_iterations").count >= 1

    def test_journal_histogram_and_segment_counter(
        self, small_dataset, worker_pool, distance_model, tmp_path
    ):
        ingestor, _, metrics, _ = make_traced_ingestor(
            small_dataset, worker_pool, distance_model, tmp_path=tmp_path
        )
        events = make_events(small_dataset, worker_pool, distance_model, 8)
        for event in events:
            ingestor.submit(event)
        ingestor.flush()
        ingestor.journal.close()

        appends = metrics.get("journal_append_seconds", fsync="off")
        assert appends is not None and appends.count == len(events)
        assert metrics.get("journal_segments_created_total").value >= 1.0
        # Per-batch journal attribution rode along in the stage totals.
        assert metrics.get("stage_seconds", stage="journal").count >= 1

    def test_guard_reason_counters_reach_the_registry(
        self, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard(GuardConfig())
        ingestor, _, metrics, _ = make_traced_ingestor(
            small_dataset, worker_pool, distance_model, guard=guard
        )
        events = make_events(small_dataset, worker_pool, distance_model, 3)
        for event in events:
            ingestor.submit(event)
        ingestor.submit(events[0])  # identical resubmission -> duplicate
        ingestor.flush()

        assert metrics.get("guard_accepted_total").value == 3.0
        assert metrics.get("guard_quarantined_total", reason="duplicate").value == 1.0

    def test_fault_injector_counts_armed_and_fired(
        self, small_dataset, worker_pool, distance_model
    ):
        faults = FaultInjector()
        ingestor, _, metrics, _ = make_traced_ingestor(
            small_dataset, worker_pool, distance_model, faults=faults
        )
        faults.arm("refresh", after=1, times=1)
        for event in make_events(small_dataset, worker_pool, distance_model, 4):
            ingestor.submit(event)
        ingestor.flush()

        assert metrics.get("faults_armed_total", point="refresh").value == 1.0
        assert (
            metrics.get("faults_fired_total", point="refresh", kind="fault").value
            == 1.0
        )
        # The supervisor retried the failed refresh and counted it.
        assert metrics.get("ingest_update_retries_total", point="refresh").value >= 1.0


class TestFrontendTelemetry:
    def test_latency_histogram_is_the_percentile_source(
        self, small_dataset, worker_pool, distance_model
    ):
        ingestor, snapshots, metrics, tracer = make_traced_ingestor(
            small_dataset, worker_pool, distance_model
        )
        for event in make_events(small_dataset, worker_pool, distance_model, 8):
            ingestor.submit(event)
        ingestor.flush()
        frontend = AssignmentFrontend(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            snapshots,
            strategy="random",
            seed=3,
            tracer=tracer,
        )
        from repro.data.models import AnswerSet

        for worker_id in worker_pool.worker_ids[:5]:
            frontend.assign(worker_id, 2, AnswerSet())

        hist = metrics.get("assign_latency_seconds")
        assert hist.count == 5
        assert frontend.latency_percentile_ms(50.0) == pytest.approx(
            hist.percentile(50.0) * 1000.0
        )
        # Snapshot age at serve was observed against the published snapshot.
        assert metrics.get("snapshot_age_at_serve_seconds").count == 5
        # The reservoir compatibility view still fills in parallel.
        assert len(frontend.stats.latencies) == 5

    def test_empty_reservoir_and_histogram_percentiles_are_zero(
        self, small_dataset, worker_pool, distance_model
    ):
        frontend = AssignmentFrontend(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            SnapshotStore(),
            strategy="random",
        )
        assert frontend.stats.latency_percentile(50.0) == 0.0
        assert frontend.latency_percentile_ms(95.0) == 0.0


class TestServiceTelemetry:
    def test_report_carries_the_phase_breakdown(
        self, small_dataset, worker_pool, distance_model
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model)
        service = OnlineServingService(
            platform,
            config=ServingConfig(
                ingest=IngestConfig(
                    max_batch_answers=8, max_batch_delay=4.0, full_refresh_interval=40
                ),
                seed=13,
            ),
        )
        report = service.run()

        assert report.phases is not None
        assert len(report.phases.quarters) == 4
        assert 0.0 < report.phases.attributed_fraction <= 1.0
        assert "assign" in report.phases.stages
        assert "phase breakdown" in report.summary()
        # Histogram-backed percentiles made it into the report.
        assert report.assign_p50_ms > 0.0
        assert report.assign_p95_ms >= report.assign_p50_ms

    def test_metrics_dir_exports_jsonl_prom_and_trace(
        self, small_dataset, worker_pool, distance_model, tmp_path
    ):
        platform = make_platform(small_dataset, worker_pool, distance_model)
        metrics_dir = tmp_path / "telemetry"
        service = OnlineServingService(
            platform,
            config=ServingConfig(
                ingest=IngestConfig(
                    max_batch_answers=8, max_batch_delay=4.0, full_refresh_interval=40
                ),
                seed=13,
                metrics_dir=metrics_dir,
                metrics_interval=2,
                trace=True,
            ),
        )
        report = service.run()

        lines = (metrics_dir / "metrics.jsonl").read_text().splitlines()
        # Periodic snapshots every 2 rounds plus the final one.
        assert len(lines) >= report.rounds // 2
        last = json.loads(lines[-1])
        assert last["answers"] == report.answers_ingested
        names = {entry["name"] for entry in last["series"]}
        assert "stage_seconds" in names
        assert "assign_latency_seconds" in names

        prom = (metrics_dir / "metrics.prom").read_text()
        assert "# TYPE ingest_answers_total counter" in prom

        trace = json.loads((metrics_dir / "trace.json").read_text())
        assert trace["traceEvents"], "trace ring should retain span events"
        assert {"name", "ph", "ts", "dur"} <= set(trace["traceEvents"][0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(metrics_interval=-1)
        with pytest.raises(ValueError):
            ServingConfig(metrics_interval=3)  # no metrics_dir
        with pytest.raises(ValueError):
            ServingConfig(trace_capacity=0)


class TestReportRateContracts:
    def test_zero_elapsed_rates_are_zero(
        self, small_dataset, worker_pool, distance_model
    ):
        from repro.serving.ingest import IngestStats
        from repro.serving.frontend import FrontendStats
        from repro.serving.service import ServingReport

        report = ServingReport(
            rounds=0,
            workers_served=0,
            answers_ingested=0,
            ingest=IngestStats(),
            frontend=FrontendStats(),
            snapshots_published=0,
            latest_version=None,
            simulated_duration=0.0,
            wall_seconds=0.0,
            final_accuracy=0.5,
        )
        assert report.ingest_answers_per_second == 0.0
        assert report.wall_answers_per_second == 0.0
        assert report.open_world_fraction == 0.0
        assert report.assign_p50_ms == 0.0
        # The summary renders without dividing by zero anywhere.
        assert "answers ingested: 0" in report.summary()
