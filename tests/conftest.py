"""Shared fixtures: a small deterministic dataset, crowd and answer corpus.

All fixtures are intentionally tiny (a dozen tasks, a handful of workers) so
that the full-suite wall-clock stays low; the full-scale Beijing/China
configurations are exercised by the benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import DatasetSpec, generate_dataset
from repro.data.models import Dataset
from repro.spatial.bbox import BEIJING_BBOX, BoundingBox
from repro.spatial.distance import DistanceModel


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """Twelve Beijing-extent tasks with four candidate labels each."""
    spec = DatasetSpec(
        name="TestSet",
        num_tasks=12,
        labels_per_task=4,
        bbox=BEIJING_BBOX,
        metric="euclidean",
        num_clusters=3,
        description="Small dataset for unit tests.",
    )
    return generate_dataset(spec, seed=1234)


@pytest.fixture(scope="session")
def distance_model(small_dataset: Dataset) -> DistanceModel:
    return DistanceModel(max_distance=small_dataset.max_distance, metric="euclidean")


@pytest.fixture(scope="session")
def worker_pool(small_dataset: Dataset) -> WorkerPool:
    bounds = BoundingBox.from_points(small_dataset.poi_locations).expand(0.05)
    spec = WorkerPoolSpec(num_workers=8, locations_per_worker=(1, 2))
    return WorkerPool.generate(bounds, spec=spec, seed=99)


@pytest.fixture()
def platform(small_dataset: Dataset, worker_pool: WorkerPool, distance_model: DistanceModel) -> CrowdPlatform:
    """A fresh platform per test (budget and answer log are mutable)."""
    return CrowdPlatform(
        dataset=small_dataset,
        worker_pool=worker_pool,
        budget=Budget(total=200),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
        seed=7,
    )


@pytest.fixture()
def collected_answers(platform: CrowdPlatform):
    """A Deployment-1 style corpus: every task answered by three workers."""
    return platform.collect_batch_answers(answers_per_task=3, seed=21)
