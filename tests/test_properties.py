"""Property-based tests (hypothesis) on the core invariants.

These target the mathematical guts of the paper:

* the bell-shaped distance functions stay inside [0.5, 1] and are monotone;
* probability-vector helpers always produce valid distributions;
* Lemma 1 (order independence) and Lemma 2 (recursion == enumeration) hold for
  arbitrary inputs;
* the accuracy metric stays in [0, 1] and equals 1 only for exact predictions;
* the EM E-step marginals of the inference model are always valid probabilities;
* the binning helpers never lose observations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import LabelAccuracy, enumerate_expected_accuracy
from repro.core.distance_functions import BellShapedFunction, DistanceFunctionSet
from repro.utils.binning import bin_edges, bin_index, histogram_percentages
from repro.utils.validation import normalise

probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
distance = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
lam = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


class TestBellShapedFunctionProperties:
    @given(lam=lam, d=distance)
    def test_range(self, lam, d):
        value = BellShapedFunction(lam)(d)
        assert 0.5 <= value <= 1.0

    @given(lam=lam, d1=distance, d2=distance)
    def test_monotone_decreasing(self, lam, d1, d2):
        fn = BellShapedFunction(lam)
        lo, hi = min(d1, d2), max(d1, d2)
        assert fn(lo) >= fn(hi) - 1e-12

    @given(d=distance, lam1=lam, lam2=lam)
    def test_larger_lambda_never_higher(self, d, lam1, lam2):
        lo, hi = min(lam1, lam2), max(lam1, lam2)
        assert BellShapedFunction(hi)(d) <= BellShapedFunction(lo)(d) + 1e-12


class TestDistanceFunctionSetProperties:
    @given(
        weights=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=3, max_size=3),
        d=distance,
    )
    def test_weighted_quality_bounded(self, weights, d):
        fset = DistanceFunctionSet((0.1, 10.0, 100.0))
        weights_arr = normalise(np.asarray(weights) + 1e-9)
        value = fset.weighted_quality(weights_arr, d)
        assert 0.5 - 1e-9 <= value <= 1.0 + 1e-9


class TestNormaliseProperties:
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=16))
    def test_output_is_distribution(self, values):
        out = normalise(values)
        assert out.shape == (len(values),)
        assert np.all(out >= 0.0)
        assert out.sum() == pytest.approx(1.0)


class TestLemmaProperties:
    @given(
        p_z1=probability,
        answer_count=st.integers(min_value=0, max_value=20),
        accuracies=st.lists(probability, min_size=2, max_size=6),
    )
    @settings(max_examples=60)
    def test_lemma1_order_independence(self, p_z1, answer_count, accuracies):
        base = LabelAccuracy.from_current_inference(p_z1, answer_count)
        forward = base.add_workers(accuracies)
        backward = base.add_workers(list(reversed(accuracies)))
        assert forward.acc_if_correct == pytest.approx(backward.acc_if_correct)
        assert forward.acc_if_incorrect == pytest.approx(backward.acc_if_incorrect)

    @given(
        p_z1=probability,
        answer_count=st.integers(min_value=0, max_value=10),
        accuracies=st.lists(probability, min_size=1, max_size=5),
    )
    @settings(max_examples=60)
    def test_lemma2_recursion_matches_enumeration(self, p_z1, answer_count, accuracies):
        recursive = LabelAccuracy.from_current_inference(p_z1, answer_count).add_workers(
            accuracies
        )
        enumerated = enumerate_expected_accuracy(p_z1, answer_count, accuracies)
        assert recursive.acc_if_correct == pytest.approx(enumerated.acc_if_correct)
        assert recursive.acc_if_incorrect == pytest.approx(enumerated.acc_if_incorrect)

    @given(
        p_z1=probability,
        answer_count=st.integers(min_value=0, max_value=20),
        accuracy=probability,
    )
    def test_accuracy_pair_stays_in_unit_interval(self, p_z1, answer_count, accuracy):
        state = LabelAccuracy.from_current_inference(p_z1, answer_count).add_worker(accuracy)
        assert 0.0 - 1e-9 <= state.acc_if_correct <= 1.0 + 1e-9
        assert 0.0 - 1e-9 <= state.acc_if_incorrect <= 1.0 + 1e-9

    @given(
        p_z1=probability,
        answer_count=st.integers(min_value=0, max_value=20),
        accuracy_low=st.floats(min_value=0.5, max_value=1.0),
        accuracy_high=st.floats(min_value=0.5, max_value=1.0),
    )
    def test_expected_accuracy_monotone_in_worker_accuracy(
        self, p_z1, answer_count, accuracy_low, accuracy_high
    ):
        """For workers no worse than random (P(z=r) >= 0.5), Equation 18's
        expected accuracy is non-decreasing in the worker's answer accuracy —
        the reason the greedy assigner prefers higher-accuracy workers."""
        lo, hi = sorted((accuracy_low, accuracy_high))
        baseline = LabelAccuracy.from_current_inference(p_z1, answer_count)
        worse = baseline.add_worker(lo)
        better = baseline.add_worker(hi)
        assert better.acc_if_correct >= worse.acc_if_correct - 1e-9
        assert better.acc_if_incorrect >= worse.acc_if_incorrect - 1e-9


class TestAccuracyMetricProperties:
    @given(data=st.data())
    @settings(max_examples=40)
    def test_metric_bounds_and_perfect_score(self, data, small_dataset):
        from repro.framework.metrics import labelling_accuracy

        predictions = {}
        for task in small_dataset.tasks:
            bits = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=1),
                    min_size=task.num_labels,
                    max_size=task.num_labels,
                )
            )
            predictions[task.task_id] = bits
        accuracy = labelling_accuracy(predictions, small_dataset.tasks)
        assert 0.0 <= accuracy <= 1.0
        exact = {task.task_id: list(task.truth) for task in small_dataset.tasks}
        assert labelling_accuracy(exact, small_dataset.tasks) == pytest.approx(1.0)


class TestBinningProperties:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
        num_bins=st.integers(min_value=1, max_value=10),
    )
    def test_histogram_conserves_mass(self, values, num_bins):
        edges = bin_edges(0.0, 1.0, num_bins)
        percentages = histogram_percentages(values, edges)
        assert percentages.sum() == pytest.approx(100.0)

    @given(
        value=st.floats(min_value=0.0, max_value=1.0),
        num_bins=st.integers(min_value=1, max_value=12),
    )
    def test_bin_index_in_range(self, value, num_bins):
        edges = bin_edges(0.0, 1.0, num_bins)
        idx = bin_index(value, edges)
        assert 0 <= idx < num_bins
        assert edges[idx] <= value <= edges[idx + 1]


class TestEMPosteriorProperties:
    @given(
        responses=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=6),
        p_qualified=st.floats(min_value=0.01, max_value=0.99),
        d=distance,
        priors=st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=6),
    )
    @settings(max_examples=60)
    def test_expectation_marginals_are_valid(self, responses, p_qualified, d, priors):
        """The closed-form E-step marginals are probabilities / distributions."""
        import numpy as np

        from repro.core.distance_functions import PAPER_FUNCTION_SET
        from repro.core.inference import _AnswerRecord
        from repro.core.params import (
            ModelParameters,
            TaskParameters,
            WorkerParameters,
        )

        n = min(len(responses), len(priors))
        responses = responses[:n]
        priors = priors[:n]

        params = ModelParameters(function_set=PAPER_FUNCTION_SET, alpha=0.5)
        params.workers["w"] = WorkerParameters(
            p_qualified, PAPER_FUNCTION_SET.uniform_weights()
        )
        params.tasks["t"] = TaskParameters(
            np.asarray(priors), PAPER_FUNCTION_SET.uniform_weights()
        )
        record = _AnswerRecord(
            worker_id="w",
            task_id="t",
            responses=np.asarray(responses, dtype=int),
            distance=d,
            f_values=PAPER_FUNCTION_SET.evaluate(d),
        )

        # _expectation is an internal method; calling it directly here is the
        # cleanest way to property-test the E-step math in isolation.
        post_z1, post_i1, post_dw, post_dt, log_likelihood = self._call_expectation(
            record, params
        )
        assert np.all(post_z1 >= -1e-9) and np.all(post_z1 <= 1.0 + 1e-9)
        assert np.all(post_i1 >= -1e-9) and np.all(post_i1 <= 1.0 + 1e-9)
        assert np.allclose(post_dw.sum(axis=1), 1.0, atol=1e-6)
        assert np.allclose(post_dt.sum(axis=1), 1.0, atol=1e-6)
        assert np.isfinite(log_likelihood)

    @staticmethod
    def _call_expectation(record, params):
        """Build a minimal inference instance bound to the record's task/worker."""
        from repro.core.inference import LocationAwareInference
        from repro.data.models import POI, Task, Worker
        from repro.spatial.distance import DistanceModel
        from repro.spatial.geometry import GeoPoint

        task = Task(
            task_id="t",
            poi=POI("p", "P", GeoPoint(0.0, 0.0)),
            labels=tuple(f"l{i}" for i in range(record.responses.size)),
            truth=tuple(int(v) for v in record.responses),
        )
        worker = Worker("w", (GeoPoint(0.0, 0.0),))
        model = LocationAwareInference(
            [task], [worker], DistanceModel(max_distance=1.0)
        )
        return model._expectation(record, params)
