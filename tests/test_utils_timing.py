"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        assert timer.elapsed > 0.0
        assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1000.0)

    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_raising_block_still_stops_timer(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer:
                raise ValueError("boom")
        assert not timer.running
        assert timer.elapsed >= 0.0

    def test_block_that_stops_timer_does_not_mask_exception(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer:
                timer.stop()
                raise ValueError("original")
        assert not timer.running

    def test_split_reads_lap_without_stopping(self):
        timer = Timer()
        timer.start()
        first = timer.split()
        second = timer.split()
        assert timer.running
        assert 0.0 <= first <= second

    def test_split_on_stopped_timer_returns_elapsed(self):
        timer = Timer()
        with timer:
            pass
        assert timer.split() == timer.elapsed

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
