"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        assert timer.elapsed > 0.0
        assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1000.0)

    def test_accumulates_across_uses(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running
