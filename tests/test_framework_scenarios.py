"""Tests for repro.framework.scenarios (named hostile-stream workloads)."""

import pytest

from repro.crowd.arrival import ChurnArrival, UniformRandomArrival
from repro.framework.scenarios import SCENARIO_NAMES, build_scenario


def small(name, **overrides):
    """A scenario sized for unit tests rather than the benchmark matrix."""
    kwargs = dict(num_tasks=16, num_workers=12, budget=60, seed=5)
    kwargs.update(overrides)
    return build_scenario(name, **kwargs)


class TestBuildScenario:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("mystery")

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_preset_assembles(self, name):
        scenario = small(name)
        assert scenario.name == name
        assert scenario.description
        assert scenario.platform.budget.total == 60
        assert len(scenario.platform.worker_pool) == 12
        assert scenario.config.reputation is not None
        assert scenario.config.probe_interval == 2

    def test_same_seed_replays_byte_for_byte(self):
        first = small("spam")
        second = small("spam")
        assert (
            first.platform.worker_pool.adversary_ids
            == second.platform.worker_pool.adversary_ids
        )
        assert [t.task_id for t in first.platform.dataset.tasks] == [
            t.task_id for t in second.platform.dataset.tasks
        ]
        assert [t.location for t in first.platform.dataset.tasks] == [
            t.location for t in second.platform.dataset.tasks
        ]
        firsts = {p.worker_id: p.inherent_quality for p in first.platform.worker_pool}
        seconds = {p.worker_id: p.inherent_quality for p in second.platform.worker_pool}
        assert firsts == seconds

    def test_different_seeds_differ(self):
        first = small("spam", seed=5)
        second = small("spam", seed=6)
        assert [t.location for t in first.platform.dataset.tasks] != [
            t.location for t in second.platform.dataset.tasks
        ]

    def test_spam_pool_composition(self):
        pool = small("spam").platform.worker_pool
        adversaries = pool.adversary_ids
        assert len(adversaries) == 3  # round(0.25 * 12)
        archetypes = {pool.profile(w).archetype for w in adversaries}
        assert archetypes <= {"always-wrong", "spammer"}  # no colluders

    def test_collusion_pool_has_rings(self):
        pool = small("collusion").platform.worker_pool
        adversaries = pool.adversary_ids
        assert len(adversaries) == 3
        rings = [pool.profile(w).collusion_ring for w in adversaries]
        assert all(ring is not None for ring in rings)
        for ring in set(rings):
            assert rings.count(ring) <= 3

    def test_drift_uses_practice_curve_and_decay(self):
        scenario = small("drift")
        drift = scenario.platform.answer_simulator.drift
        assert drift is not None
        assert drift.mode == "practice"
        assert scenario.config.ingest.stat_decay == 0.98

    def test_stat_decay_override(self):
        scenario = small("drift", stat_decay=1.0)
        assert scenario.config.ingest.stat_decay == 1.0

    def test_reputation_off_control_arm(self):
        scenario = small("clean", reputation=False)
        assert scenario.config.reputation is None

    def test_churn_arrival_and_diurnal(self):
        scenario = small("churn")
        assert isinstance(scenario.platform.arrival_process, ChurnArrival)
        assert scenario.config.diurnal is not None

    def test_non_churn_uses_uniform_arrival(self):
        scenario = small("clean")
        assert isinstance(scenario.platform.arrival_process, UniformRandomArrival)
        assert scenario.config.diurnal is None
