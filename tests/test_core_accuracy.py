"""Tests for repro.core.accuracy (Equations 15-20, Lemmas 1-2)."""

import numpy as np
import pytest

from repro.core.accuracy import (
    AccuracyEstimator,
    LabelAccuracy,
    enumerate_expected_accuracy,
)
from repro.core.inference import LocationAwareInference


class TestLabelAccuracy:
    def test_baseline_pair(self):
        state = LabelAccuracy.from_current_inference(0.7, 3)
        assert state.acc_if_correct == pytest.approx(0.7)
        assert state.acc_if_incorrect == pytest.approx(0.3)
        assert state.effective_answers == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelAccuracy.from_current_inference(1.4, 2)
        with pytest.raises(ValueError):
            LabelAccuracy.from_current_inference(0.5, -1)
        with pytest.raises(ValueError):
            LabelAccuracy.from_current_inference(0.5, 2).add_worker(1.2)

    def test_paper_example_2(self):
        """Example 2 of the paper: t4 with |W(t)| = 2, P(z=1)=0.59, worker accuracy 0.87."""
        state = LabelAccuracy.from_current_inference(0.59, 2).add_worker(0.87)
        assert state.acc_if_correct == pytest.approx(0.65, abs=0.01)
        state0 = LabelAccuracy.from_current_inference(0.41, 2).add_worker(0.87)
        assert state0.acc_if_correct == pytest.approx(0.53, abs=0.01)

    def test_paper_example_3(self):
        """Example 3: adding a second worker with accuracy 0.86.

        The paper prints 0.69 / 0.61; evaluating its own recursion exactly
        (with the rounded intermediate 0.65 / 0.53 it quotes) gives 0.678 /
        0.587, so we allow for that rounding in the tolerance.
        """
        state = (
            LabelAccuracy.from_current_inference(0.59, 2)
            .add_worker(0.87)
            .add_worker(0.86)
        )
        assert state.acc_if_correct == pytest.approx(0.69, abs=0.03)
        state0 = (
            LabelAccuracy.from_current_inference(0.41, 2)
            .add_worker(0.87)
            .add_worker(0.86)
        )
        assert state0.acc_if_correct == pytest.approx(0.61, abs=0.03)

    def test_paper_example_4_improvement(self):
        """Example 4: ΔAcc of assigning t4 to w2 is about 0.08."""
        baseline = LabelAccuracy.from_current_inference(0.59, 2)
        after = baseline.add_worker(0.87)
        improvement = after.expected_improvement_over(baseline)
        # The paper combines the z=1 and z=0 branches explicitly; our pair does the
        # same through acc_if_correct / acc_if_incorrect weighted by P(z).
        assert improvement == pytest.approx(0.08, abs=0.015)

    def test_lemma1_order_independence(self):
        base = LabelAccuracy.from_current_inference(0.6, 3)
        forward = base.add_worker(0.9).add_worker(0.55)
        backward = base.add_worker(0.55).add_worker(0.9)
        assert forward.acc_if_correct == pytest.approx(backward.acc_if_correct)
        assert forward.acc_if_incorrect == pytest.approx(backward.acc_if_incorrect)

    def test_lemma2_matches_enumeration(self):
        accuracies = [0.9, 0.7, 0.55, 0.8]
        recursive = LabelAccuracy.from_current_inference(0.65, 2).add_workers(accuracies)
        enumerated = enumerate_expected_accuracy(0.65, 2, accuracies)
        assert recursive.acc_if_correct == pytest.approx(enumerated.acc_if_correct)
        assert recursive.acc_if_incorrect == pytest.approx(enumerated.acc_if_incorrect)
        assert recursive.effective_answers == enumerated.effective_answers

    def test_accurate_worker_improves_accuracy(self):
        baseline = LabelAccuracy.from_current_inference(0.7, 2)
        after = baseline.add_worker(0.95)
        assert after.expected_improvement_over(baseline) > 0.0

    def test_random_worker_is_useless(self):
        baseline = LabelAccuracy.from_current_inference(0.7, 2)
        after = baseline.add_worker(0.5)
        assert after.expected_improvement_over(baseline) <= 1e-9

    def test_expected_accuracy_weighted(self):
        state = LabelAccuracy.from_current_inference(0.8, 1)
        assert state.expected_accuracy == pytest.approx(0.8 * 0.8 + 0.2 * 0.2)

    def test_add_workers_empty_is_identity(self):
        state = LabelAccuracy.from_current_inference(0.7, 2)
        assert state.add_workers([]) == state


class TestEnumerateExpectedAccuracy:
    def test_no_workers_returns_baseline(self):
        baseline = enumerate_expected_accuracy(0.6, 4, [])
        assert baseline.acc_if_correct == pytest.approx(0.6)
        assert baseline.effective_answers == 4

    def test_single_worker_matches_equation_18(self):
        p_z1, count, pe = 0.59, 2, 0.87
        enumerated = enumerate_expected_accuracy(p_z1, count, [pe])
        expected = (count * p_z1 + pe) / (count + 1) * pe + (
            count * p_z1 + (1 - pe)
        ) / (count + 1) * (1 - pe)
        assert enumerated.acc_if_correct == pytest.approx(expected)


class TestAccuracyEstimator:
    @pytest.fixture()
    def estimator(self, small_dataset, worker_pool, distance_model, collected_answers):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        model.fit(collected_answers)
        return AccuracyEstimator(
            tasks=small_dataset.task_index,
            workers={w.worker_id: w for w in worker_pool.workers},
            distance_model=distance_model,
            parameters=model.parameters,
            answers=collected_answers,
        )

    def test_answer_accuracy_in_bounds(self, estimator, small_dataset, worker_pool):
        value = estimator.answer_accuracy(
            worker_pool.worker_ids[0], small_dataset.tasks[0].task_id
        )
        assert 0.0 <= value <= 1.0

    def test_current_label_accuracies_match_parameters(
        self, estimator, small_dataset, collected_answers
    ):
        task = small_dataset.tasks[0]
        states = estimator.current_label_accuracies(task.task_id)
        assert len(states) == task.num_labels
        probs = estimator.parameters.task(task.task_id, task.num_labels).label_probs
        for state, p in zip(states, probs):
            assert state.p_z1 == pytest.approx(float(p))
            assert state.effective_answers == collected_answers.answer_count_of_task(
                task.task_id
            )

    def test_task_improvement_matches_manual_computation(
        self, estimator, small_dataset, worker_pool
    ):
        task = small_dataset.tasks[0]
        worker_id = worker_pool.worker_ids[0]
        improvement, new_states = estimator.task_improvement(task.task_id, worker_id)
        assert len(new_states) == task.num_labels
        baselines = estimator.current_label_accuracies(task.task_id)
        assert all(
            new.effective_answers == old.effective_answers + 1
            for new, old in zip(new_states, baselines)
        )
        # Recompute the improvement label by label with LabelAccuracy directly.
        pe = estimator.answer_accuracy(worker_id, task.task_id)
        expected = sum(
            base.add_worker(pe).expected_improvement_over(base) for base in baselines
        )
        assert improvement == pytest.approx(expected)

    def test_improvement_sign_follows_confidence_rule(self):
        """ΔAcc of a single worker on a fresh label is non-negative exactly when
        the worker's accuracy is at least as far from 0.5 as the current label
        probability is (a consequence of Equations 18 and 20)."""
        for p_z1 in (0.5, 0.6, 0.8, 0.95):
            for pe in (0.5, 0.55, 0.7, 0.9, 0.99):
                baseline = LabelAccuracy.from_current_inference(p_z1, 3)
                delta = baseline.add_worker(pe).expected_improvement_over(baseline)
                if abs(pe - 0.5) >= abs(p_z1 - 0.5):
                    assert delta >= -1e-9
                else:
                    assert delta <= 1e-9

    def test_task_improvement_chains_states(self, estimator, small_dataset, worker_pool):
        task = small_dataset.tasks[0]
        baselines = estimator.current_label_accuracies(task.task_id)
        first_gain, states = estimator.task_improvement(
            task.task_id, worker_pool.worker_ids[0], baselines, baselines
        )
        second_gain, _ = estimator.task_improvement(
            task.task_id, worker_pool.worker_ids[1], states, baselines
        )
        # The cumulative gain of two workers must exceed the first worker's alone.
        assert second_gain >= first_gain - 1e-9
