"""Tests for repro.assign.uncertainty (the uncertainty-first extension)."""

import numpy as np
import pytest

from repro.assign.uncertainty import UncertaintyFirstAssigner, bernoulli_entropy
from repro.core.distance_functions import PAPER_FUNCTION_SET
from repro.core.params import ModelParameters, TaskParameters
from repro.data.models import Answer, AnswerSet


class TestBernoulliEntropy:
    def test_extremes_are_zero(self):
        assert bernoulli_entropy(0.0) == 0.0
        assert bernoulli_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert bernoulli_entropy(0.5) == pytest.approx(np.log(2))
        assert bernoulli_entropy(0.5) > bernoulli_entropy(0.3) > bernoulli_entropy(0.1)

    def test_symmetry(self):
        assert bernoulli_entropy(0.2) == pytest.approx(bernoulli_entropy(0.8))


def make_parameters(small_dataset, confident_ids, uncertain_ids):
    """Parameters where `confident_ids` tasks are (almost) decided and
    `uncertain_ids` tasks sit at 0.5."""
    params = ModelParameters(function_set=PAPER_FUNCTION_SET)
    uniform = PAPER_FUNCTION_SET.uniform_weights()
    for task in small_dataset.tasks:
        if task.task_id in confident_ids:
            probs = np.full(task.num_labels, 0.99)
        elif task.task_id in uncertain_ids:
            probs = np.full(task.num_labels, 0.5)
        else:
            probs = np.full(task.num_labels, 0.8)
        params.tasks[task.task_id] = TaskParameters(probs, uniform.copy())
    return params


class TestUncertaintyFirstAssigner:
    def test_prefers_most_uncertain_tasks(self, small_dataset, worker_pool):
        uncertain = {small_dataset.tasks[3].task_id, small_dataset.tasks[7].task_id}
        confident = {t.task_id for t in small_dataset.tasks} - uncertain
        params = make_parameters(small_dataset, confident, uncertain)
        assigner = UncertaintyFirstAssigner(
            small_dataset.tasks, worker_pool.workers, params
        )
        worker_id = worker_pool.worker_ids[0]
        assignment = assigner.assign([worker_id], 2, AnswerSet())
        assert set(assignment[worker_id]) == uncertain

    def test_unseen_tasks_have_maximal_uncertainty(self, small_dataset, worker_pool):
        # No parameters at all: every task defaults to P(z)=0.5, i.e. maximal entropy.
        assigner = UncertaintyFirstAssigner(small_dataset.tasks, worker_pool.workers)
        task_id = small_dataset.tasks[0].task_id
        expected = small_dataset.tasks[0].num_labels * np.log(2)
        assert assigner.task_uncertainty(task_id) == pytest.approx(expected)

    def test_spreads_load_within_a_round(self, small_dataset, worker_pool):
        uncertain = {t.task_id for t in small_dataset.tasks[:4]}
        params = make_parameters(
            small_dataset, {t.task_id for t in small_dataset.tasks[4:]}, uncertain
        )
        assigner = UncertaintyFirstAssigner(
            small_dataset.tasks, worker_pool.workers, params
        )
        workers = worker_pool.worker_ids[:2]
        assignment = assigner.assign(workers, 2, AnswerSet())
        # Two workers, two tasks each, four equally-uncertain tasks: the round
        # spreads across all four instead of both workers taking the same two.
        chosen = [task for tasks in assignment.values() for task in tasks]
        assert len(set(chosen)) == 4

    def test_respects_answered_tasks(self, small_dataset, worker_pool):
        assigner = UncertaintyFirstAssigner(small_dataset.tasks, worker_pool.workers)
        worker_id = worker_pool.worker_ids[0]
        done = small_dataset.tasks[0]
        answers = AnswerSet(
            [Answer(worker_id, done.task_id, tuple([1] * done.num_labels))]
        )
        assignment = assigner.assign([worker_id], len(small_dataset), answers)
        assert done.task_id not in assignment[worker_id]

    def test_update_parameters(self, small_dataset, worker_pool):
        assigner = UncertaintyFirstAssigner(small_dataset.tasks, worker_pool.workers)
        uncertain = {small_dataset.tasks[0].task_id}
        params = make_parameters(
            small_dataset, {t.task_id for t in small_dataset.tasks[1:]}, uncertain
        )
        assigner.update_parameters(params)
        assert assigner.parameters is params
        worker_id = worker_pool.worker_ids[0]
        assignment = assigner.assign([worker_id], 1, AnswerSet())
        assert assignment[worker_id] == [small_dataset.tasks[0].task_id]

    def test_validation(self, small_dataset, worker_pool):
        assigner = UncertaintyFirstAssigner(small_dataset.tasks, worker_pool.workers)
        with pytest.raises(ValueError):
            assigner.assign(worker_pool.worker_ids[:1], 0, AnswerSet())
        with pytest.raises(KeyError):
            assigner.assign(["ghost"], 1, AnswerSet())

    def test_works_in_framework_loop(self, platform, small_dataset, worker_pool, distance_model):
        from repro.core.inference import InferenceConfig, LocationAwareInference
        from repro.framework.config import FrameworkConfig
        from repro.framework.framework import PoiLabellingFramework

        config = FrameworkConfig(
            budget=40,
            tasks_per_worker=2,
            workers_per_round=3,
            evaluation_checkpoints=(40,),
            inference=InferenceConfig(max_iterations=15),
        )
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model,
            config=config.inference,
        )
        assigner = UncertaintyFirstAssigner(small_dataset.tasks, worker_pool.workers)
        result = PoiLabellingFramework(platform, inference, assigner, config=config).run()
        assert result.assignments_spent == 40
        assert result.final_accuracy > 0.5
