"""Tests for the AccOpt assigner (Algorithm 1), on both scoring engines."""

import pytest

from repro.assign.accopt import ACCOPT_ENGINES, AccOptAssigner
from repro.core.inference import LocationAwareInference
from repro.data.models import Answer, AnswerSet


@pytest.fixture()
def fitted_parameters(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    return model.parameters


@pytest.fixture(params=ACCOPT_ENGINES)
def engine(request):
    return request.param


@pytest.fixture()
def assigner(small_dataset, worker_pool, distance_model, fitted_parameters, engine):
    assigner = AccOptAssigner(
        small_dataset.tasks,
        worker_pool.workers,
        distance_model,
        engine=engine,
        # The sparse engine needs a candidate radius; a Beijing-extent
        # covering value keeps it exactly equivalent to the dense engines.
        candidate_radius=50.0 if engine == "sparse" else None,
    )
    assigner.update_parameters(fitted_parameters)
    return assigner


def test_legacy_import_path_still_works():
    from repro.core.assignment import AccOptAssigner as legacy

    assert legacy is AccOptAssigner


class TestValidation:
    def test_requires_tasks_and_workers(self, small_dataset, worker_pool, distance_model):
        with pytest.raises(ValueError):
            AccOptAssigner([], worker_pool.workers, distance_model)
        with pytest.raises(ValueError):
            AccOptAssigner(small_dataset.tasks, [], distance_model)

    def test_unknown_engine(self, small_dataset, worker_pool, distance_model):
        with pytest.raises(ValueError):
            AccOptAssigner(
                small_dataset.tasks, worker_pool.workers, distance_model, engine="gpu"
            )

    def test_invalid_h(self, assigner, worker_pool):
        with pytest.raises(ValueError):
            assigner.assign(worker_pool.worker_ids[:2], 0, AnswerSet())

    def test_unknown_worker(self, assigner):
        with pytest.raises(KeyError):
            assigner.assign(["ghost"], 1, AnswerSet())

    def test_duplicate_workers(self, assigner, worker_pool):
        worker_id = worker_pool.worker_ids[0]
        with pytest.raises(ValueError):
            assigner.assign([worker_id, worker_id], 1, AnswerSet())


class TestAssignment:
    def test_each_worker_gets_h_tasks(self, assigner, worker_pool, collected_answers):
        workers = worker_pool.worker_ids[:3]
        assignment = assigner.assign(workers, 2, collected_answers)
        assert set(assignment) == set(workers)
        for worker_id in workers:
            assert len(assignment[worker_id]) == 2
            assert len(set(assignment[worker_id])) == 2

    def test_never_assigns_answered_tasks(self, assigner, worker_pool, collected_answers):
        workers = worker_pool.worker_ids[:3]
        assignment = assigner.assign(workers, 2, collected_answers)
        for worker_id in workers:
            done = collected_answers.tasks_of_worker(worker_id)
            assert not set(assignment[worker_id]) & done

    def test_capacity_capped_by_unanswered_tasks(self, small_dataset, worker_pool, distance_model):
        # One worker has answered every task except one: only that one can be assigned.
        worker_id = worker_pool.worker_ids[0]
        answers = AnswerSet()
        for task in small_dataset.tasks[:-1]:
            answers.add(Answer(worker_id, task.task_id, tuple([1] * task.num_labels)))
        assigner = AccOptAssigner(small_dataset.tasks, worker_pool.workers, distance_model)
        assignment = assigner.assign([worker_id], 3, answers)
        assert assignment[worker_id] == [small_dataset.tasks[-1].task_id]

    def test_empty_worker_list(self, assigner, collected_answers):
        assert assigner.assign([], 2, collected_answers) == {}

    def test_prefers_high_quality_worker_for_contested_task(
        self, small_dataset, worker_pool, distance_model, fitted_parameters
    ):
        """The greedy pick must go to the (worker, task) pair with the largest
        expected accuracy improvement, which favours high-quality workers."""
        assigner = AccOptAssigner(
            small_dataset.tasks, worker_pool.workers, distance_model, fitted_parameters
        )
        workers = worker_pool.worker_ids
        assignment = assigner.assign(workers, 1, AnswerSet())
        # Every worker received exactly one task.
        assert all(len(tasks) == 1 for tasks in assignment.values())

    def test_fresh_workers_prioritised(self, small_dataset, worker_pool, distance_model, fitted_parameters):
        """Footnote 3: workers without estimated parameters are treated optimistically,
        so assigning to them is never blocked."""
        assigner = AccOptAssigner(
            small_dataset.tasks, worker_pool.workers, distance_model, fitted_parameters
        )
        # A worker absent from the fitted parameters still receives h tasks.
        unknown = [
            worker_id
            for worker_id in worker_pool.worker_ids
            if not fitted_parameters.has_worker(worker_id)
        ]
        target = unknown[0] if unknown else worker_pool.worker_ids[0]
        assignment = assigner.assign([target], 2, AnswerSet())
        assert len(assignment[target]) == 2

    def test_assignment_is_deterministic(self, assigner, worker_pool, collected_answers):
        workers = worker_pool.worker_ids[:4]
        first = assigner.assign(workers, 2, collected_answers)
        second = assigner.assign(workers, 2, collected_answers)
        assert first == second

    def test_update_parameters_changes_behaviour_possible(
        self, small_dataset, worker_pool, distance_model, fitted_parameters
    ):
        from repro.core.params import ModelParameters

        assigner = AccOptAssigner(small_dataset.tasks, worker_pool.workers, distance_model)
        default_params_assignment = assigner.assign(
            worker_pool.worker_ids[:2], 1, AnswerSet()
        )
        assigner.update_parameters(fitted_parameters)
        assert assigner.parameters is fitted_parameters
        fitted_assignment = assigner.assign(worker_pool.worker_ids[:2], 1, AnswerSet())
        # Both are valid assignments of one task per worker.
        for assignment in (default_params_assignment, fitted_assignment):
            assert all(len(tasks) == 1 for tasks in assignment.values())


class TestGreedyObjective:
    def test_greedy_beats_random_in_expected_improvement(
        self, small_dataset, worker_pool, distance_model, fitted_parameters, collected_answers
    ):
        """The greedy assignment's expected ΔAcc must be at least as large as a
        random assignment's, measured under the same estimator."""
        import numpy as np

        from repro.assign.random_assigner import RandomAssigner
        from repro.core.accuracy import AccuracyEstimator

        workers = worker_pool.worker_ids[:4]
        accopt = AccOptAssigner(
            small_dataset.tasks, worker_pool.workers, distance_model, fitted_parameters
        )
        random_assigner = RandomAssigner(
            small_dataset.tasks, worker_pool.workers, seed=3
        )
        greedy = accopt.assign(workers, 2, collected_answers)
        random_assignment = random_assigner.assign(workers, 2, collected_answers)

        estimator = AccuracyEstimator(
            tasks=small_dataset.task_index,
            workers={w.worker_id: w for w in worker_pool.workers},
            distance_model=distance_model,
            parameters=fitted_parameters,
            answers=collected_answers,
        )

        def total_improvement(assignment):
            per_task_workers: dict[str, list[str]] = {}
            for worker_id, task_ids in assignment.items():
                for task_id in task_ids:
                    per_task_workers.setdefault(task_id, []).append(worker_id)
            total = 0.0
            for task_id, assigned in per_task_workers.items():
                baselines = estimator.current_label_accuracies(task_id)
                states = list(baselines)
                for worker_id in assigned:
                    accuracy = estimator.answer_accuracy(worker_id, task_id)
                    states = [state.add_worker(accuracy) for state in states]
                total += sum(
                    s.expected_improvement_over(b) for s, b in zip(states, baselines)
                )
            return total

        assert total_improvement(greedy) >= total_improvement(random_assignment) - 1e-9
