"""Tests for repro.crowd.budget."""

import pytest

from repro.crowd.budget import Budget, BudgetExhaustedError


class TestBudget:
    def test_initial_state(self):
        budget = Budget(total=100)
        assert budget.remaining == 100
        assert not budget.exhausted
        assert budget.monetary_cost == 0.0

    def test_charge(self):
        budget = Budget(total=10)
        budget.charge(4)
        assert budget.spent == 4
        assert budget.remaining == 6
        assert budget.history == [4]

    def test_charge_to_exhaustion(self):
        budget = Budget(total=3)
        budget.charge(3)
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge(1)

    def test_overcharge_raises_without_partial_spend(self):
        budget = Budget(total=5)
        with pytest.raises(BudgetExhaustedError):
            budget.charge(6)
        assert budget.spent == 0

    def test_negative_charge_raises(self):
        with pytest.raises(ValueError):
            Budget(total=5).charge(-1)

    def test_can_afford(self):
        budget = Budget(total=5)
        assert budget.can_afford(5)
        assert not budget.can_afford(6)

    def test_monetary_cost(self):
        budget = Budget(total=10, cost_per_assignment=0.2)
        budget.charge(5)
        assert budget.monetary_cost == pytest.approx(1.0)

    def test_reset(self):
        budget = Budget(total=10)
        budget.charge(7)
        budget.reset()
        assert budget.spent == 0
        assert budget.history == []

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(total=-1)
        with pytest.raises(ValueError):
            Budget(total=5, spent=6)
        with pytest.raises(ValueError):
            Budget(total=5, cost_per_assignment=-0.1)

    def test_zero_total_budget_is_immediately_exhausted(self):
        assert Budget(total=0).exhausted
