"""Tests for repro.analysis.convergence (Figure 10)."""

import pytest

from repro.analysis.convergence import convergence_trace


class TestConvergenceTrace:
    def test_trace_lengths(self, small_dataset, worker_pool, distance_model, collected_answers):
        trace = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=10,
        )
        assert trace.iterations == 10
        assert len(trace.max_parameter_change) == 10
        assert len(trace.log_likelihood) == 10

    def test_parameter_change_eventually_small(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        # The unit-test corpus is tiny (three answers per task), so we use a
        # looser threshold than the paper's 0.005; the point is that the change
        # shrinks and the threshold crossing is detected.
        trace = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=30,
            threshold=0.02,
        )
        assert trace.iterations_to_threshold is not None
        assert trace.iterations_to_threshold <= 30
        assert trace.max_parameter_change[trace.iterations_to_threshold - 1] <= trace.threshold
        assert trace.max_parameter_change[-1] < trace.max_parameter_change[0]

    def test_changes_are_non_negative(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        trace = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=8,
        )
        assert all(change >= 0.0 for change in trace.max_parameter_change)

    def test_log_likelihood_non_decreasing(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        trace = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=15,
        )
        for earlier, later in zip(trace.log_likelihood, trace.log_likelihood[1:]):
            assert later >= earlier - 1e-6

    def test_custom_threshold(self, small_dataset, worker_pool, distance_model, collected_answers):
        strict = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=20,
            threshold=1e-9,
        )
        loose = convergence_trace(
            small_dataset,
            worker_pool.workers,
            collected_answers,
            distance_model,
            max_iterations=20,
            threshold=0.5,
        )
        assert loose.iterations_to_threshold is not None
        if strict.iterations_to_threshold is not None:
            assert strict.iterations_to_threshold >= loose.iterations_to_threshold
