"""Tests for repro.analysis.case_study (Table I)."""

import numpy as np
import pytest

from repro.analysis.case_study import build_case_study, most_disagreed_task
from repro.core.inference import LocationAwareInference


@pytest.fixture()
def fitted_inference(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    return model.fit(collected_answers)


class TestMostDisagreedTask:
    def test_returns_answered_task(self, collected_answers, small_dataset):
        task_id = most_disagreed_task(collected_answers, small_dataset)
        assert collected_answers.answer_count_of_task(task_id) > 0

    def test_empty_answers_raise(self, small_dataset):
        from repro.data.models import AnswerSet

        with pytest.raises(ValueError):
            most_disagreed_task(AnswerSet(), small_dataset)


class TestBuildCaseStudy:
    def test_rows_match_answering_workers(
        self, fitted_inference, small_dataset, worker_pool, distance_model, collected_answers
    ):
        task_id = most_disagreed_task(collected_answers, small_dataset)
        study = build_case_study(
            task_id, small_dataset, worker_pool.workers, collected_answers,
            fitted_inference, distance_model,
        )
        assert study.task_id == task_id
        assert len(study.rows) == collected_answers.answer_count_of_task(task_id)
        task = small_dataset.task_by_id(task_id)
        assert study.labels == task.labels
        assert study.truth == task.truth

    def test_row_values_valid(
        self, fitted_inference, small_dataset, worker_pool, distance_model, collected_answers
    ):
        task_id = most_disagreed_task(collected_answers, small_dataset)
        study = build_case_study(
            task_id, small_dataset, worker_pool.workers, collected_answers,
            fitted_inference, distance_model,
        )
        for row in study.rows:
            assert 0.0 <= row.distance <= 1.0
            assert 0.0 <= row.real_accuracy <= 1.0
            assert 0.0 <= row.modelled_accuracy <= 1.0
            assert 0.0 <= row.average_accuracy <= 1.0
            assert len(row.answer) == len(study.labels)

    def test_inferred_labels_binary_and_fraction(self, fitted_inference, small_dataset, worker_pool, distance_model, collected_answers):
        task_id = small_dataset.tasks[0].task_id
        study = build_case_study(
            task_id, small_dataset, worker_pool.workers, collected_answers,
            fitted_inference, distance_model,
        )
        assert set(np.unique(study.inferred_labels)).issubset({0, 1})
        assert 0.0 <= study.inference_correct_fraction <= 1.0

    def test_unfitted_model_rejected(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        with pytest.raises(RuntimeError):
            build_case_study(
                small_dataset.tasks[0].task_id,
                small_dataset,
                worker_pool.workers,
                collected_answers,
                model,
                distance_model,
            )
