"""Sparse candidate-pruned kernels vs their dense oracles.

The CSR kernels (:func:`repro.core.accuracy_kernel.answer_accuracy_csr`,
:func:`~repro.core.accuracy_kernel.marginal_gains_csr`), the candidate
structure (:class:`repro.spatial.candidates.CandidateIndex`) and the
``engine="sparse"`` AccOpt/EM paths all promise *exact* agreement with the
dense engines whenever the candidate radius covers the universe — the far
field is a pure superset optimisation then.  These tests pin that promise
(bit-equality or ≤ 1e-9, well below any statistical tolerance), plus the
degenerate regimes the dense engines never see: tasks with zero candidate
workers, workers with zero candidate tasks, and the all-far radius where
every pair scores through the closed-form far-field gain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assign.accopt import AccOptAssigner
from repro.core import accuracy_kernel
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.core.params import ModelParameters
from repro.data.models import POI, Answer, AnswerSet, Task, Worker
from repro.obs.metrics import MetricsRegistry
from repro.spatial.candidates import CandidateIndex
from repro.spatial.distance import (
    DistanceModel,
    normalised_distance_matrix,
    sparse_distance_csr,
)
from repro.spatial.geometry import GeoPoint

#: A radius that covers the Beijing-extent test universe with a wide margin
#: (the conftest bbox spans a fraction of a degree) — finite on purpose, so
#: the covering-radius equivalence tests exercise the same code path a real
#: deployment would run, not the ``inf`` shortcut.
COVERING_RADIUS = 50.0


def full_coverage_csr(distances: np.ndarray):
    """Dense ``(W, T)`` distances as an every-pair CSR structure."""
    num_workers, num_tasks = distances.shape
    indptr = np.arange(num_workers + 1, dtype=np.intp) * num_tasks
    indices = np.tile(np.arange(num_tasks, dtype=np.intp), num_workers)
    return indptr, indices, distances.ravel().copy()


@pytest.fixture()
def fitted_model(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    return model


@pytest.fixture()
def fitted_store(small_dataset, worker_pool, fitted_model):
    task_ids = [task.task_id for task in small_dataset.tasks]
    num_labels = [task.num_labels for task in small_dataset.tasks]
    return fitted_model.parameters.to_array_store(
        list(worker_pool.worker_ids), task_ids, num_labels
    )


@pytest.fixture()
def dense_distances(small_dataset, worker_pool, distance_model):
    return normalised_distance_matrix(
        [worker.locations for worker in worker_pool.workers],
        [task.location for task in small_dataset.tasks],
        distance_model,
    )


class TestSparseDistanceCsr:
    def test_full_coverage_matches_dense_bit_for_bit(
        self, small_dataset, worker_pool, distance_model, dense_distances
    ):
        indptr, indices, _ = full_coverage_csr(dense_distances)
        sparse = sparse_distance_csr(
            [worker.locations for worker in worker_pool.workers],
            [task.location for task in small_dataset.tasks],
            distance_model,
            indptr,
            indices,
        )
        assert np.array_equal(sparse, dense_distances.ravel())

    def test_arbitrary_subset_matches_dense_gather(
        self, small_dataset, worker_pool, distance_model, dense_distances
    ):
        rng = np.random.default_rng(7)
        num_workers, num_tasks = dense_distances.shape
        rows = []
        for _ in range(num_workers):
            k = int(rng.integers(0, num_tasks + 1))
            rows.append(np.sort(rng.choice(num_tasks, size=k, replace=False)))
        indptr = np.concatenate(
            ([0], np.cumsum([row.size for row in rows]))
        ).astype(np.intp)
        indices = np.concatenate(rows).astype(np.intp) if rows else np.empty(0)
        sparse = sparse_distance_csr(
            [worker.locations for worker in worker_pool.workers],
            [task.location for task in small_dataset.tasks],
            distance_model,
            indptr,
            indices,
        )
        expected = dense_distances[
            np.repeat(np.arange(num_workers), np.diff(indptr)), indices
        ]
        assert np.array_equal(sparse, expected)


class TestKernelTwins:
    def test_answer_accuracy_csr_matches_dense(
        self, fitted_store, dense_distances
    ):
        dense = accuracy_kernel.answer_accuracy_matrix(
            fitted_store, dense_distances
        )
        indptr, indices, data = full_coverage_csr(dense_distances)
        sparse = accuracy_kernel.answer_accuracy_csr(
            fitted_store, indptr, indices, data
        )
        assert np.array_equal(sparse, dense.ravel())

    def test_marginal_gains_csr_matches_dense(
        self, small_dataset, fitted_store, dense_distances, collected_answers
    ):
        dense_acc = accuracy_kernel.answer_accuracy_matrix(
            fitted_store, dense_distances
        )
        state = accuracy_kernel.baseline_state(
            fitted_store.label_probs,
            fitted_store.label_offsets,
            [
                collected_answers.answer_count_of_task(task.task_id)
                for task in small_dataset.tasks
            ],
        )
        dense_gains = accuracy_kernel.marginal_gains(state, dense_acc)
        indptr, indices, _ = full_coverage_csr(dense_distances)
        sparse_gains = accuracy_kernel.marginal_gains_csr(
            state, indices, dense_acc.ravel()
        )
        assert np.array_equal(sparse_gains, dense_gains.ravel())

    def test_far_field_gains_match_csr_at_far_accuracy(
        self, small_dataset, fitted_store, collected_answers
    ):
        """The per-task far vector is the CSR gain evaluated at the shared
        far-field accuracy — the identity the sparse greedy loop relies on."""
        far = accuracy_kernel.far_field_accuracy(fitted_store)
        state = accuracy_kernel.baseline_state(
            fitted_store.label_probs,
            fitted_store.label_offsets,
            [
                collected_answers.answer_count_of_task(task.task_id)
                for task in small_dataset.tasks
            ],
        )
        far_gains = accuracy_kernel.far_field_gains(state, far)
        columns = np.arange(fitted_store.num_tasks, dtype=np.intp)
        via_csr = accuracy_kernel.marginal_gains_csr(
            state, columns, np.full(fitted_store.num_tasks, far)
        )
        assert np.array_equal(far_gains, via_csr)

    def test_far_field_accuracy_is_a_probability(self, fitted_store):
        far = accuracy_kernel.far_field_accuracy(fitted_store)
        assert 0.0 <= far <= 1.0


def build_sparse_dense_pair(tasks, workers, distance_model, parameters, radius):
    sparse = AccOptAssigner(
        tasks,
        workers,
        distance_model,
        parameters,
        engine="sparse",
        candidate_radius=radius,
    )
    dense = AccOptAssigner(
        tasks, workers, distance_model, parameters, engine="vectorized"
    )
    return sparse, dense


class TestSparseAccOptEquivalence:
    @pytest.mark.parametrize("h", [1, 2, 3])
    @pytest.mark.parametrize("radius", [COVERING_RADIUS, float("inf")])
    def test_identical_on_fitted_parameters(
        self,
        small_dataset,
        worker_pool,
        distance_model,
        fitted_model,
        collected_answers,
        h,
        radius,
    ):
        sparse, dense = build_sparse_dense_pair(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            fitted_model.parameters,
            radius,
        )
        workers = worker_pool.worker_ids
        assert sparse.assign(workers, h, collected_answers) == dense.assign(
            workers, h, collected_answers
        )

    def test_identical_on_default_priors_and_empty_log(
        self, small_dataset, worker_pool, distance_model
    ):
        sparse, dense = build_sparse_dense_pair(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            ModelParameters(),
            COVERING_RADIUS,
        )
        workers = worker_pool.worker_ids
        assert sparse.assign(workers, 2, AnswerSet()) == dense.assign(
            workers, 2, AnswerSet()
        )

    def test_identical_across_growing_log(
        self,
        small_dataset,
        worker_pool,
        distance_model,
        fitted_model,
        collected_answers,
    ):
        """Repeated batches over a growing answer log stay in lockstep."""
        sparse, dense = build_sparse_dense_pair(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            fitted_model.parameters,
            COVERING_RADIUS,
        )
        answers = collected_answers.copy()
        workers = worker_pool.worker_ids[:4]
        for _ in range(3):
            assignment_s = sparse.assign(workers, 2, answers)
            assignment_d = dense.assign(workers, 2, answers)
            assert assignment_s == assignment_d
            for worker_id, task_ids in assignment_s.items():
                for task_id in task_ids:
                    task = small_dataset.task_by_id(task_id)
                    answers.add(
                        Answer(
                            worker_id=worker_id,
                            task_id=task_id,
                            responses=tuple(task.truth),
                        )
                    )

    def test_identical_after_open_world_task_added(
        self, small_dataset, worker_pool, distance_model, fitted_model
    ):
        sparse, dense = build_sparse_dense_pair(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            fitted_model.parameters,
            COVERING_RADIUS,
        )
        workers = worker_pool.worker_ids
        # Build the candidate structure, then grow the universe under it.
        assert sparse.assign(workers[:2], 1, AnswerSet()) == dense.assign(
            workers[:2], 1, AnswerSet()
        )
        template = small_dataset.tasks[0]
        newcomer = Task(
            task_id="late-task",
            poi=POI(
                poi_id="late-poi",
                name="late",
                location=template.location,
            ),
            labels=("a", "b"),
            truth=(1, 0),
        )
        assert sparse.add_task(newcomer)
        assert dense.add_task(newcomer)
        assert sparse.assign(workers, 2, AnswerSet()) == dense.assign(
            workers, 2, AnswerSet()
        )


class TestSparseAccOptDegenerate:
    def test_all_far_workers_still_fill_capacity(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        """A radius so small every pair is pruned: assignment falls back to
        the far-field gains and every worker still receives min(h, open)."""
        assigner = AccOptAssigner(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            ModelParameters(),
            engine="sparse",
            candidate_radius=1e-12,
        )
        workers = worker_pool.worker_ids
        h = 2
        assignment = assigner.assign(workers, h, collected_answers)
        for worker_id in workers:
            answered = collected_answers.tasks_of_worker(worker_id)
            expected = min(h, len(small_dataset.tasks) - len(answered))
            task_ids = assignment[worker_id]
            assert len(task_ids) == expected
            assert len(set(task_ids)) == len(task_ids)
            assert not set(task_ids) & answered

    def test_zero_candidate_task_reachable_via_far_field(self, distance_model):
        """A task no worker has in radius can still be assigned (far field)."""
        poi = lambda i, x, y: POI(  # noqa: E731 - local shorthand
            poi_id=f"p{i}", name=f"p{i}", location=GeoPoint(x, y)
        )
        tasks = [
            Task(task_id="near", poi=poi(0, 0.0, 0.0), labels=("a",), truth=(1,)),
            Task(
                task_id="far-away",
                poi=poi(1, 9.0, 9.0),
                labels=("a",),
                truth=(1,),
            ),
        ]
        workers = [Worker("w1", (GeoPoint(0.1, 0.0),))]
        assigner = AccOptAssigner(
            tasks,
            workers,
            DistanceModel(max_distance=20.0),
            ModelParameters(),
            engine="sparse",
            candidate_radius=1.0,
        )
        assignment = assigner.assign(["w1"], 2, AnswerSet())
        assert sorted(assignment["w1"]) == ["far-away", "near"]

    def test_sparse_engine_requires_radius(
        self, small_dataset, worker_pool, distance_model
    ):
        with pytest.raises(ValueError, match="candidate_radius"):
            AccOptAssigner(
                small_dataset.tasks,
                worker_pool.workers,
                distance_model,
                engine="sparse",
            )


class TestSparseEmEquivalence:
    @pytest.mark.parametrize("radius", [COVERING_RADIUS, float("inf")])
    def test_covering_radius_matches_vectorized(
        self, small_dataset, worker_pool, distance_model, collected_answers, radius
    ):
        dense = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        ).fit(collected_answers)
        sparse = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(engine="sparse", candidate_radius=radius),
        ).fit(collected_answers)

        assert (
            sparse.last_result.log_likelihood_trace
            == dense.last_result.log_likelihood_trace
        )
        for task in small_dataset.tasks:
            np.testing.assert_allclose(
                sparse.label_probabilities(task.task_id),
                dense.label_probabilities(task.task_id),
                rtol=0.0,
                atol=1e-9,
            )
            sparse_task = sparse.parameters.task(
                task.task_id, num_labels=task.num_labels
            )
            dense_task = dense.parameters.task(
                task.task_id, num_labels=task.num_labels
            )
            np.testing.assert_allclose(
                sparse_task.influence_weights,
                dense_task.influence_weights,
                rtol=0.0,
                atol=1e-9,
            )
        for worker in worker_pool.workers:
            sparse_worker = sparse.parameters.worker(worker.worker_id)
            dense_worker = dense.parameters.worker(worker.worker_id)
            assert (
                abs(sparse_worker.p_qualified - dense_worker.p_qualified) <= 1e-9
            )
            np.testing.assert_allclose(
                np.asarray(sparse_worker.distance_weights),
                np.asarray(dense_worker.distance_weights),
                rtol=0.0,
                atol=1e-9,
            )

    def test_tiny_radius_fit_runs_and_predicts(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        """All observed pairs far: the fit degrades gracefully (distance 1.0
        everywhere) but still converges to a usable estimate."""
        model = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers,
            distance_model,
            config=InferenceConfig(
                engine="sparse", candidate_radius=1e-12, max_iterations=20
            ),
        ).fit(collected_answers)
        predictions = model.predict_all()
        assert set(predictions) == {t.task_id for t in small_dataset.tasks}

    def test_sparse_engine_requires_radius(self):
        with pytest.raises(ValueError, match="candidate_radius"):
            InferenceConfig(engine="sparse")
        with pytest.raises(ValueError, match="candidate_radius"):
            InferenceConfig(engine="sparse", candidate_radius=-1.0)


class TestCandidateIndex:
    @pytest.fixture()
    def universe(self):
        rng = np.random.default_rng(31)
        tasks = [
            Task(
                task_id=f"t{j}",
                poi=POI(
                    poi_id=f"p{j}",
                    name=f"p{j}",
                    location=GeoPoint(float(rng.random()), float(rng.random())),
                ),
                labels=("a", "b"),
                truth=(1, 0),
            )
            for j in range(25)
        ]
        workers = [
            Worker(
                f"w{i}",
                tuple(
                    GeoPoint(float(rng.random()), float(rng.random()))
                    for _ in range(int(rng.integers(1, 3)))
                ),
            )
            for i in range(10)
        ]
        model = DistanceModel(max_distance=float(np.sqrt(2.0)))
        return tasks, workers, model

    def test_rows_match_bruteforce_pruning(self, universe):
        tasks, workers, model = universe
        radius = 0.3
        index = CandidateIndex(tasks, model, radius)
        indptr, indices, data = index.rows_for(workers)
        dense = normalised_distance_matrix(
            [w.locations for w in workers],
            [t.location for t in tasks],
            model,
        )
        for i, worker in enumerate(workers):
            raw_min = np.array(
                [
                    min(
                        float(np.hypot(loc.x - t.location.x, loc.y - t.location.y))
                        for loc in worker.locations
                    )
                    for t in tasks
                ]
            )
            expected_cols = np.flatnonzero(raw_min <= radius)
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            assert np.array_equal(indices[lo:hi], expected_cols)
            assert np.array_equal(data[lo:hi], dense[i, expected_cols])

    def test_metrics_account_for_every_pair(self, universe):
        tasks, workers, model = universe
        registry = MetricsRegistry()
        index = CandidateIndex(tasks, model, 0.3, metrics=registry)
        index.rows_for(workers)
        total = len(workers) * len(tasks)
        assert index.pairs_kept_total + index.pairs_pruned_total == total
        kept = registry.counter("candidate_pairs_kept_total").value
        pruned = registry.counter("candidate_pairs_pruned_total").value
        assert kept + pruned == total
        assert registry.histogram("candidate_row_nnz").count == len(workers)

    def test_open_world_task_refreshes_cached_rows(self, universe):
        tasks, workers, model = universe
        index = CandidateIndex(tasks, model, 0.3)
        before_indptr, before_indices, _ = index.rows_for(workers)
        # Drop a new task exactly on the first worker's first location — it
        # must appear in that worker's refreshed row as the last column.
        spot = workers[0].locations[0]
        newcomer = Task(
            task_id="late",
            poi=POI(poi_id="late", name="late", location=spot),
            labels=("a",),
            truth=(1,),
        )
        index.add_task(newcomer)
        assert index.column_of("late") == len(tasks)
        after_indptr, after_indices, after_data = index.rows_for(workers)
        lo, hi = int(after_indptr[0]), int(after_indptr[1])
        row_cols = after_indices[lo:hi]
        assert row_cols[-1] == len(tasks)
        assert after_data[lo:hi][-1] == 0.0
        # Fresh index over the grown universe agrees with the refreshed rows.
        fresh = CandidateIndex(tasks + [newcomer], model, 0.3)
        fresh_indptr, fresh_indices, fresh_data = fresh.rows_for(workers)
        assert np.array_equal(after_indptr, fresh_indptr)
        assert np.array_equal(after_indices, fresh_indices)
        assert np.array_equal(after_data, fresh_data)

    def test_pair_distances_candidate_vs_far(self, universe):
        tasks, workers, model = universe
        radius = 0.3
        index = CandidateIndex(tasks, model, radius)
        workers_by_id = {w.worker_id: w for w in workers}
        dense = normalised_distance_matrix(
            [w.locations for w in workers],
            [t.location for t in tasks],
            model,
        )
        worker_ids = [w.worker_id for i, w in enumerate(workers) for _ in tasks]
        task_ids = [t.task_id for _ in workers for t in tasks]
        out = index.pair_distances(worker_ids, task_ids, workers_by_id)
        k = 0
        for i, worker in enumerate(workers):
            for j, task in enumerate(tasks):
                raw = min(
                    float(np.hypot(loc.x - task.location.x, loc.y - task.location.y))
                    for loc in worker.locations
                )
                expected = dense[i, j] if raw <= radius else 1.0
                assert out[k] == expected
                k += 1

    def test_rejects_non_positive_radius(self, universe):
        tasks, _, model = universe
        for radius in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                CandidateIndex(tasks, model, radius)


class TestServingConfigValidation:
    def test_sparse_engine_requires_radius(self):
        from repro.serving.service import ServingConfig

        with pytest.raises(ValueError, match="candidate_radius"):
            ServingConfig(assigner_engine="sparse")
        with pytest.raises(ValueError, match="positive"):
            ServingConfig(candidate_radius=-2.0)
        ServingConfig(assigner_engine="sparse", candidate_radius=0.5)
