"""Tests for repro.spatial.geometry."""

import math

import pytest

from repro.spatial.geometry import (
    GeoPoint,
    centroid,
    euclidean_distance,
    haversine_distance,
)


class TestGeoPoint:
    def test_construction_and_aliases(self):
        point = GeoPoint(116.4, 39.9)
        assert point.x == 116.4
        assert point.lon == 116.4
        assert point.lat == 39.9
        assert point.as_tuple() == (116.4, 39.9)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(float("nan"), 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, float("inf"))

    def test_offset(self):
        point = GeoPoint(1.0, 2.0).offset(0.5, -1.0)
        assert point == GeoPoint(1.5, 1.0)

    def test_frozen(self):
        point = GeoPoint(0.0, 0.0)
        with pytest.raises(AttributeError):
            point.x = 3.0  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))


class TestEuclideanDistance:
    def test_simple_triangle(self):
        assert euclidean_distance(GeoPoint(0, 0), GeoPoint(3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean_distance(GeoPoint(2, 2), GeoPoint(2, 2)) == 0.0

    def test_symmetry(self):
        a, b = GeoPoint(1.2, 3.4), GeoPoint(-2.0, 7.7)
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))


class TestHaversineDistance:
    def test_zero_distance(self):
        point = GeoPoint(116.4, 39.9)
        assert haversine_distance(point, point) == 0.0

    def test_known_distance_beijing_shanghai(self):
        beijing = GeoPoint(116.4074, 39.9042)
        shanghai = GeoPoint(121.4737, 31.2304)
        distance = haversine_distance(beijing, shanghai)
        # Great-circle distance is roughly 1068 km.
        assert 1000.0 < distance < 1130.0

    def test_symmetry(self):
        a, b = GeoPoint(116.4, 39.9), GeoPoint(121.5, 31.2)
        assert haversine_distance(a, b) == pytest.approx(haversine_distance(b, a))

    def test_one_degree_longitude_at_equator(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)
        assert haversine_distance(a, b) == pytest.approx(111.19, rel=0.01)

    def test_antipodal_points_do_not_crash(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(180.0, 0.0)
        distance = haversine_distance(a, b)
        assert distance == pytest.approx(math.pi * 6371.0088, rel=0.001)


class TestCentroid:
    def test_single_point(self):
        assert centroid([GeoPoint(2.0, 3.0)]) == GeoPoint(2.0, 3.0)

    def test_square(self):
        points = [GeoPoint(0, 0), GeoPoint(2, 0), GeoPoint(2, 2), GeoPoint(0, 2)]
        assert centroid(points) == GeoPoint(1.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestConvexHull:
    def test_square_with_interior_points(self):
        import numpy as np

        from repro.spatial.geometry import convex_hull_indices

        xs = np.array([0.0, 4.0, 4.0, 0.0, 2.0, 1.0, 3.0])
        ys = np.array([0.0, 0.0, 4.0, 4.0, 2.0, 1.0, 3.0])
        hull = convex_hull_indices(xs, ys)
        assert sorted(hull.tolist()) == [0, 1, 2, 3]

    def test_hull_contains_extremes(self):
        import numpy as np

        from repro.spatial.geometry import convex_hull_indices

        rng = np.random.default_rng(41)
        xs = rng.uniform(-5, 5, size=200)
        ys = rng.uniform(-5, 5, size=200)
        hull = set(convex_hull_indices(xs, ys).tolist())
        for extreme in (
            int(np.argmin(xs)),
            int(np.argmax(xs)),
            int(np.argmin(ys)),
            int(np.argmax(ys)),
        ):
            # An extreme point is always on the hull (or coincides with one).
            assert any(
                xs[h] == xs[extreme] and ys[h] == ys[extreme] for h in hull
            )

    def test_collinear_and_duplicates(self):
        import numpy as np

        from repro.spatial.geometry import convex_hull_indices

        xs = np.array([0.0, 1.0, 2.0, 1.0, 2.0])
        ys = np.array([0.0, 1.0, 2.0, 1.0, 2.0])
        hull = convex_hull_indices(xs, ys)
        hull_points = {(xs[h], ys[h]) for h in hull.tolist()}
        assert (0.0, 0.0) in hull_points and (2.0, 2.0) in hull_points

    def test_tiny_inputs_returned_as_is(self):
        import numpy as np

        from repro.spatial.geometry import convex_hull_indices

        assert convex_hull_indices(np.array([]), np.array([])).size == 0
        assert convex_hull_indices(np.array([1.0]), np.array([2.0])).tolist() == [0]
