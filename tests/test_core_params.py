"""Tests for repro.core.params."""

import numpy as np
import pytest

from repro.core.distance_functions import PAPER_FUNCTION_SET
from repro.core.params import ModelParameters, TaskParameters, WorkerParameters


class TestWorkerParameters:
    def test_valid(self):
        params = WorkerParameters(0.9, np.array([0.2, 0.3, 0.5]))
        assert params.p_qualified == pytest.approx(0.9)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WorkerParameters(1.5, np.array([0.5, 0.5]))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            WorkerParameters(0.5, np.array([0.5, 0.2]))

    def test_copy_is_deep(self):
        params = WorkerParameters(0.9, np.array([0.5, 0.5]))
        clone = params.copy()
        clone.distance_weights[0] = 0.0
        assert params.distance_weights[0] == pytest.approx(0.5)


class TestTaskParameters:
    def test_valid_and_inferred_labels(self):
        params = TaskParameters(np.array([0.8, 0.3, 0.5]), np.array([0.5, 0.5]))
        assert params.num_labels == 3
        assert list(params.inferred_labels()) == [1, 0, 1]
        assert list(params.inferred_labels(threshold=0.9)) == [0, 0, 0]

    def test_invalid_label_probs(self):
        with pytest.raises(ValueError):
            TaskParameters(np.array([1.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            TaskParameters(np.array([]), np.array([1.0]))

    def test_invalid_influence(self):
        with pytest.raises(ValueError):
            TaskParameters(np.array([0.5]), np.array([0.7, 0.7]))

    def test_copy_is_deep(self):
        params = TaskParameters(np.array([0.5, 0.5]), np.array([1.0]))
        clone = params.copy()
        clone.label_probs[0] = 0.0
        assert params.label_probs[0] == pytest.approx(0.5)


class TestModelParameters:
    def make_params(self):
        params = ModelParameters(function_set=PAPER_FUNCTION_SET, alpha=0.5)
        params.workers["w1"] = WorkerParameters(0.8, np.array([0.6, 0.3, 0.1]))
        params.tasks["t1"] = TaskParameters(
            np.array([0.9, 0.2]), np.array([0.7, 0.2, 0.1])
        )
        return params

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ModelParameters(alpha=1.2)

    def test_known_worker_lookup(self):
        params = self.make_params()
        assert params.has_worker("w1")
        assert params.worker("w1").p_qualified == pytest.approx(0.8)

    def test_unknown_worker_gets_optimistic_prior(self):
        params = self.make_params()
        prior = params.worker("newcomer")
        assert not params.has_worker("newcomer")
        assert prior.p_qualified == 1.0
        assert prior.distance_weights[PAPER_FUNCTION_SET.flattest_index] == 1.0

    def test_unknown_task_needs_num_labels(self):
        params = self.make_params()
        with pytest.raises(KeyError):
            params.task("ghost")
        prior = params.task("ghost", num_labels=4)
        assert np.allclose(prior.label_probs, 0.5)
        assert prior.influence_weights[PAPER_FUNCTION_SET.flattest_index] == 1.0

    def test_worker_distance_quality_decreases_with_distance(self):
        params = self.make_params()
        near = params.worker_distance_quality("w1", 0.05)
        far = params.worker_distance_quality("w1", 0.9)
        assert near > far

    def test_answer_accuracy_combines_quality_and_random_guessing(self):
        params = self.make_params()
        accuracy = params.answer_accuracy("w1", "t1", 0.1)
        qualified = params.qualified_answer_accuracy("w1", "t1", 0.1)
        assert accuracy == pytest.approx(0.8 * qualified + 0.2 * 0.5)
        assert 0.5 <= accuracy <= 1.0

    def test_answer_accuracy_for_unknown_pair_is_high(self):
        params = self.make_params()
        # Footnote 3: new workers/tasks are assumed best-quality.
        assert params.answer_accuracy("new-w", "new-t", 0.2) > 0.9

    def test_copy_independent(self):
        params = self.make_params()
        clone = params.copy()
        clone.workers["w1"].distance_weights[0] = 0.0
        assert params.workers["w1"].distance_weights[0] == pytest.approx(0.6)

    def test_max_difference_zero_for_identical(self):
        params = self.make_params()
        assert params.max_difference(params.copy()) == pytest.approx(0.0)

    def test_max_difference_detects_changes(self):
        a = self.make_params()
        b = self.make_params()
        b.workers["w1"] = WorkerParameters(0.3, np.array([0.6, 0.3, 0.1]))
        assert a.max_difference(b) == pytest.approx(0.5)

    def test_max_difference_missing_entity_counts_fully(self):
        a = self.make_params()
        b = ModelParameters(function_set=PAPER_FUNCTION_SET)
        assert a.max_difference(b) == pytest.approx(1.0)
