"""Tests for repro.core.params."""

import numpy as np
import pytest

from repro.core.distance_functions import PAPER_FUNCTION_SET
from repro.core.params import ModelParameters, TaskParameters, WorkerParameters


class TestWorkerParameters:
    def test_valid(self):
        params = WorkerParameters(0.9, np.array([0.2, 0.3, 0.5]))
        assert params.p_qualified == pytest.approx(0.9)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WorkerParameters(1.5, np.array([0.5, 0.5]))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            WorkerParameters(0.5, np.array([0.5, 0.2]))

    def test_copy_is_deep(self):
        params = WorkerParameters(0.9, np.array([0.5, 0.5]))
        clone = params.copy()
        clone.distance_weights[0] = 0.0
        assert params.distance_weights[0] == pytest.approx(0.5)


class TestTaskParameters:
    def test_valid_and_inferred_labels(self):
        params = TaskParameters(np.array([0.8, 0.3, 0.5]), np.array([0.5, 0.5]))
        assert params.num_labels == 3
        assert list(params.inferred_labels()) == [1, 0, 1]
        assert list(params.inferred_labels(threshold=0.9)) == [0, 0, 0]

    def test_invalid_label_probs(self):
        with pytest.raises(ValueError):
            TaskParameters(np.array([1.5]), np.array([1.0]))
        with pytest.raises(ValueError):
            TaskParameters(np.array([]), np.array([1.0]))

    def test_invalid_influence(self):
        with pytest.raises(ValueError):
            TaskParameters(np.array([0.5]), np.array([0.7, 0.7]))

    def test_copy_is_deep(self):
        params = TaskParameters(np.array([0.5, 0.5]), np.array([1.0]))
        clone = params.copy()
        clone.label_probs[0] = 0.0
        assert params.label_probs[0] == pytest.approx(0.5)


class TestModelParameters:
    def make_params(self):
        params = ModelParameters(function_set=PAPER_FUNCTION_SET, alpha=0.5)
        params.workers["w1"] = WorkerParameters(0.8, np.array([0.6, 0.3, 0.1]))
        params.tasks["t1"] = TaskParameters(
            np.array([0.9, 0.2]), np.array([0.7, 0.2, 0.1])
        )
        return params

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ModelParameters(alpha=1.2)

    def test_known_worker_lookup(self):
        params = self.make_params()
        assert params.has_worker("w1")
        assert params.worker("w1").p_qualified == pytest.approx(0.8)

    def test_unknown_worker_gets_optimistic_prior(self):
        params = self.make_params()
        prior = params.worker("newcomer")
        assert not params.has_worker("newcomer")
        assert prior.p_qualified == 1.0
        assert prior.distance_weights[PAPER_FUNCTION_SET.flattest_index] == 1.0

    def test_unknown_task_needs_num_labels(self):
        params = self.make_params()
        with pytest.raises(KeyError):
            params.task("ghost")
        prior = params.task("ghost", num_labels=4)
        assert np.allclose(prior.label_probs, 0.5)
        assert prior.influence_weights[PAPER_FUNCTION_SET.flattest_index] == 1.0

    def test_worker_distance_quality_decreases_with_distance(self):
        params = self.make_params()
        near = params.worker_distance_quality("w1", 0.05)
        far = params.worker_distance_quality("w1", 0.9)
        assert near > far

    def test_answer_accuracy_combines_quality_and_random_guessing(self):
        params = self.make_params()
        accuracy = params.answer_accuracy("w1", "t1", 0.1)
        qualified = params.qualified_answer_accuracy("w1", "t1", 0.1)
        assert accuracy == pytest.approx(0.8 * qualified + 0.2 * 0.5)
        assert 0.5 <= accuracy <= 1.0

    def test_answer_accuracy_for_unknown_pair_is_high(self):
        params = self.make_params()
        # Footnote 3: new workers/tasks are assumed best-quality.
        assert params.answer_accuracy("new-w", "new-t", 0.2) > 0.9

    def test_copy_independent(self):
        params = self.make_params()
        clone = params.copy()
        clone.workers["w1"].distance_weights[0] = 0.0
        assert params.workers["w1"].distance_weights[0] == pytest.approx(0.6)

    def test_max_difference_zero_for_identical(self):
        params = self.make_params()
        assert params.max_difference(params.copy()) == pytest.approx(0.0)

    def test_max_difference_detects_changes(self):
        a = self.make_params()
        b = self.make_params()
        b.workers["w1"] = WorkerParameters(0.3, np.array([0.6, 0.3, 0.1]))
        assert a.max_difference(b) == pytest.approx(0.5)

    def test_max_difference_missing_entity_counts_fully(self):
        a = self.make_params()
        b = ModelParameters(function_set=PAPER_FUNCTION_SET)
        assert a.max_difference(b) == pytest.approx(1.0)


class TestArrayParameterStore:
    def make_params(self):
        params = ModelParameters(function_set=PAPER_FUNCTION_SET, alpha=0.5)
        params.workers["w1"] = WorkerParameters(0.8, np.array([0.6, 0.3, 0.1]))
        params.workers["w2"] = WorkerParameters(0.4, np.array([0.1, 0.1, 0.8]))
        params.tasks["t1"] = TaskParameters(
            np.array([0.9, 0.2]), np.array([0.7, 0.2, 0.1])
        )
        params.tasks["t2"] = TaskParameters(
            np.array([0.1, 0.5, 0.6]), np.array([0.2, 0.5, 0.3])
        )
        return params

    def test_round_trip(self):
        params = self.make_params()
        store = params.to_array_store(["w1", "w2"], ["t1", "t2"], [2, 3])
        restored = store.to_model()
        assert set(restored.workers) == {"w1", "w2"}
        assert set(restored.tasks) == {"t1", "t2"}
        for worker_id in ("w1", "w2"):
            assert restored.workers[worker_id].p_qualified == pytest.approx(
                params.workers[worker_id].p_qualified
            )
            np.testing.assert_array_equal(
                restored.workers[worker_id].distance_weights,
                params.workers[worker_id].distance_weights,
            )
        for task_id in ("t1", "t2"):
            np.testing.assert_array_equal(
                restored.tasks[task_id].label_probs, params.tasks[task_id].label_probs
            )
            np.testing.assert_array_equal(
                restored.tasks[task_id].influence_weights,
                params.tasks[task_id].influence_weights,
            )

    def test_ragged_label_layout(self):
        store = self.make_params().to_array_store(["w1"], ["t1", "t2"], [2, 3])
        assert store.num_label_slots == 5
        np.testing.assert_array_equal(store.label_offsets, [0, 2, 5])
        np.testing.assert_array_equal(
            store.label_probs[store.task_label_slice(1)], [0.1, 0.5, 0.6]
        )

    def test_missing_entities_get_footnote3_priors(self):
        params = self.make_params()
        store = params.to_array_store(["w1", "ghost"], ["t1", "phantom"], [2, 4])
        assert store.p_qualified[1] == pytest.approx(1.0)
        np.testing.assert_array_equal(
            store.distance_weights[1], PAPER_FUNCTION_SET.best_quality_weights()
        )
        np.testing.assert_array_equal(
            store.label_probs[store.task_label_slice(1)], np.full(4, 0.5)
        )

    def test_label_count_mismatch_rejected(self):
        params = self.make_params()
        with pytest.raises(ValueError):
            params.to_array_store(["w1"], ["t1"], [3])

    def test_max_difference_matches_model_parameters(self):
        a = self.make_params()
        b = self.make_params()
        b.workers["w2"] = WorkerParameters(0.9, np.array([0.1, 0.1, 0.8]))
        b.tasks["t1"] = TaskParameters(np.array([0.7, 0.2]), np.array([0.7, 0.2, 0.1]))
        store_a = a.to_array_store(["w1", "w2"], ["t1", "t2"], [2, 3])
        store_b = b.to_array_store(["w1", "w2"], ["t1", "t2"], [2, 3])
        assert store_a.max_difference(store_b) == pytest.approx(a.max_difference(b))

    def test_max_difference_requires_same_orderings(self):
        params = self.make_params()
        store_a = params.to_array_store(["w1", "w2"], ["t1"], [2])
        store_b = params.to_array_store(["w2", "w1"], ["t1"], [2])
        with pytest.raises(ValueError):
            store_a.max_difference(store_b)

    def test_copy_is_independent(self):
        store = self.make_params().to_array_store(["w1"], ["t1"], [2])
        clone = store.copy()
        clone.p_qualified[0] = 0.0
        clone.label_probs[0] = 0.0
        assert store.p_qualified[0] == pytest.approx(0.8)
        assert store.label_probs[0] == pytest.approx(0.9)
