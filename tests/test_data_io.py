"""Tests for repro.data.io round-trips."""

import json

import pytest

from repro.data.generators import DatasetSpec, generate_dataset
from repro.data.io import (
    answers_from_dict,
    answers_to_dict,
    dataset_from_dict,
    dataset_to_dict,
    load_answers,
    load_dataset,
    save_answers,
    save_dataset,
    workers_from_dict,
    workers_to_dict,
)
from repro.data.models import Answer, AnswerSet, Worker
from repro.spatial.geometry import GeoPoint


@pytest.fixture()
def dataset():
    return generate_dataset(DatasetSpec(name="io", num_tasks=6, labels_per_task=5), seed=3)


class TestDatasetRoundTrip:
    def test_dict_round_trip(self, dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        assert rebuilt.name == dataset.name
        assert len(rebuilt) == len(dataset)
        assert [t.labels for t in rebuilt.tasks] == [t.labels for t in dataset.tasks]
        assert [t.truth for t in rebuilt.tasks] == [t.truth for t in dataset.tasks]
        assert rebuilt.max_distance == pytest.approx(dataset.max_distance)

    def test_file_round_trip(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "nested" / "dataset.json")
        assert path.exists()
        rebuilt = load_dataset(path)
        assert [t.task_id for t in rebuilt.tasks] == [t.task_id for t in dataset.tasks]

    def test_unknown_version_rejected(self, dataset):
        payload = dataset_to_dict(dataset)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            dataset_from_dict(payload)

    def test_serialised_json_is_valid(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "d.json")
        with path.open() as handle:
            payload = json.load(handle)
        assert payload["name"] == "io"


class TestAnswerRoundTrip:
    def test_dict_round_trip(self):
        answers = AnswerSet(
            [Answer("w1", "t1", (1, 0, 1)), Answer("w2", "t2", (0, 0, 1))]
        )
        rebuilt = answers_from_dict(answers_to_dict(answers))
        assert len(rebuilt) == 2
        assert rebuilt.get("w1", "t1").responses == (1, 0, 1)

    def test_file_round_trip(self, tmp_path):
        answers = AnswerSet([Answer("w1", "t1", (1, 1))])
        path = save_answers(answers, tmp_path / "answers.json")
        rebuilt = load_answers(path)
        assert rebuilt.get("w1", "t1").responses == (1, 1)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            answers_from_dict({"format_version": 0, "answers": []})


class TestWorkerRoundTrip:
    def test_round_trip(self):
        workers = [
            Worker("w1", (GeoPoint(1.0, 2.0),)),
            Worker("w2", (GeoPoint(3.0, 4.0), GeoPoint(5.0, 6.0))),
        ]
        rebuilt = workers_from_dict(workers_to_dict(workers))
        assert rebuilt == workers

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            workers_from_dict({"format_version": 2, "workers": []})
