"""Tests for repro.core.distance_functions."""

import numpy as np
import pytest

from repro.core.distance_functions import (
    BellShapedFunction,
    DistanceFunctionSet,
    PAPER_FUNCTION_SET,
)


class TestBellShapedFunction:
    def test_value_at_zero_distance_is_one(self):
        assert BellShapedFunction(10.0)(0.0) == pytest.approx(1.0)

    def test_value_bounded_below_by_half(self):
        fn = BellShapedFunction(100.0)
        for d in np.linspace(0.0, 1.0, 20):
            assert 0.5 <= fn(float(d)) <= 1.0

    def test_monotonically_decreasing(self):
        fn = BellShapedFunction(10.0)
        values = [fn(float(d)) for d in np.linspace(0.0, 1.0, 30)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_larger_lambda_decays_faster(self):
        assert BellShapedFunction(100.0)(0.3) < BellShapedFunction(0.1)(0.3)

    def test_paper_reference_point(self):
        # The paper notes f_100 drops to ~0.5 around distance 0.2.
        assert BellShapedFunction(100.0)(0.2) == pytest.approx(0.509, abs=0.01)
        # And f_0.1 stays above 0.9 even at distance 1.0.
        assert BellShapedFunction(0.1)(1.0) > 0.9

    def test_invalid_distance_rejected(self):
        fn = BellShapedFunction(1.0)
        with pytest.raises(ValueError):
            fn(-0.1)
        with pytest.raises(ValueError):
            fn(1.1)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            BellShapedFunction(-1.0)

    def test_lambda_zero_is_constant(self):
        fn = BellShapedFunction(0.0)
        assert fn(0.0) == fn(0.7) == 1.0

    def test_evaluate_many_matches_scalar(self):
        fn = BellShapedFunction(10.0)
        distances = np.linspace(0.0, 1.0, 7)
        vectorised = fn.evaluate_many(distances)
        assert np.allclose(vectorised, [fn(float(d)) for d in distances])

    def test_evaluate_many_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BellShapedFunction(1.0).evaluate_many([0.2, 1.3])


class TestDistanceFunctionSet:
    def test_sorted_by_lambda(self):
        fset = DistanceFunctionSet((100.0, 0.1, 10.0))
        assert fset.lambdas == (0.1, 10.0, 100.0)
        assert fset.flattest_index == 0
        assert fset.steepest_index == 2

    def test_duplicate_lambdas_rejected(self):
        with pytest.raises(ValueError):
            DistanceFunctionSet((1.0, 1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DistanceFunctionSet(())

    def test_indexing_and_iteration(self):
        fset = DistanceFunctionSet((0.1, 10.0))
        assert len(fset) == 2
        assert fset[0].lam == 0.1
        assert [fn.lam for fn in fset] == [0.1, 10.0]

    def test_equality_and_hash(self):
        assert DistanceFunctionSet((0.1, 10.0)) == DistanceFunctionSet((10.0, 0.1))
        assert hash(DistanceFunctionSet((0.1, 10.0))) == hash(DistanceFunctionSet((10.0, 0.1)))
        assert DistanceFunctionSet((0.1,)) != DistanceFunctionSet((0.2,))

    def test_evaluate_shape_and_bounds(self):
        values = PAPER_FUNCTION_SET.evaluate(0.4)
        assert values.shape == (3,)
        assert np.all(values >= 0.5)
        assert np.all(values <= 1.0)

    def test_weighted_quality_uniform(self):
        fset = PAPER_FUNCTION_SET
        weights = fset.uniform_weights()
        value = fset.weighted_quality(weights, 0.3)
        assert value == pytest.approx(float(np.mean(fset.evaluate(0.3))))

    def test_weighted_quality_wrong_length_raises(self):
        with pytest.raises(ValueError):
            PAPER_FUNCTION_SET.weighted_quality([0.5, 0.5], 0.3)

    def test_uniform_weights_sum_to_one(self):
        assert PAPER_FUNCTION_SET.uniform_weights().sum() == pytest.approx(1.0)

    def test_best_quality_weights_on_flattest(self):
        weights = PAPER_FUNCTION_SET.best_quality_weights()
        assert weights[PAPER_FUNCTION_SET.flattest_index] == 1.0
        assert weights.sum() == pytest.approx(1.0)

    def test_paper_function_set_lambdas(self):
        assert PAPER_FUNCTION_SET.lambdas == (0.1, 10.0, 100.0)
