"""Tests for repro.obs.metrics: counters, gauges, log-linear histograms, registry."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, HistogramConfig, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogramConfig:
    def test_interned_by_parameters(self):
        assert HistogramConfig() is HistogramConfig()
        assert HistogramConfig(1e-3, 1e3, 4) is HistogramConfig(1e-3, 1e3, 4)
        assert HistogramConfig(1e-3, 1e3, 4) is not HistogramConfig()

    def test_bounds_are_sorted_and_capped(self):
        cfg = HistogramConfig(1e-3, 1e3, 4)
        assert cfg.bounds == sorted(cfg.bounds)
        assert cfg.bounds[-1] == 1e3
        assert all(b > 1e-3 for b in cfg.bounds)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HistogramConfig(0.0, 1.0)
        with pytest.raises(ValueError):
            HistogramConfig(1.0, 0.5)
        with pytest.raises(ValueError):
            HistogramConfig(1e-3, 1e3, 0)


class TestHistogram:
    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(50) == 0.0

    def test_value_below_first_bucket_goes_to_underflow(self):
        h = Histogram(HistogramConfig(1e-3, 1e3))
        h.observe(1e-9)
        assert h.underflow == 1
        assert sum(h.counts) == 0
        assert h.count == 1
        # Percentiles anchor to the exact observed minimum.
        assert h.percentile(50) == pytest.approx(1e-9)

    def test_value_above_last_bucket_goes_to_overflow(self):
        h = Histogram(HistogramConfig(1e-3, 1e3))
        h.observe(5e6)
        assert h.overflow == 1
        assert sum(h.counts) == 0
        assert h.percentile(99) == pytest.approx(5e6)

    def test_count_sum_min_max(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.107)
        assert h.min == 0.001
        assert h.max == 0.1

    def test_percentile_bounded_relative_error(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.1):
            h.observe(v)
        # sub_buckets=8 bounds relative bucket width by 1/8 per octave.
        assert h.percentile(0) == 0.001
        assert h.percentile(100) == 0.1
        assert h.percentile(50) == pytest.approx(0.002, rel=0.25)

    def test_percentile_monotone_in_p(self):
        h = Histogram()
        values = [1e-4 * (1.7**i) for i in range(40)]
        for v in values:
            h.observe(v)
        readings = [h.percentile(p) for p in range(0, 101, 5)]
        assert readings == sorted(readings)
        assert readings[0] == min(values)
        assert readings[-1] == max(values)

    def test_merge_adds_counts_exactly(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.01, 1e-9):
            a.observe(v)
        for v in (0.02, 5e5):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.underflow == 1
        assert a.overflow == 1
        assert a.sum == pytest.approx(0.001 + 0.01 + 1e-9 + 0.02 + 5e5)
        assert a.min == 1e-9
        assert a.max == 5e5

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(HistogramConfig(1e-3, 1e3)))


class TestMetricsRegistry:
    def test_same_key_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("events", kind="a") is reg.counter("events", kind="a")
        assert reg.counter("events", kind="a") is not reg.counter("events", kind="b")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        reg.counter("present")
        assert reg.get("present") is not None

    def test_find_iterates_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", stage="a").inc(1)
        reg.counter("hits", stage="b").inc(2)
        series = {labels["stage"]: m.value for labels, m in reg.find("hits")}
        assert series == {"a": 1.0, "b": 2.0}

    def test_merge_of_two_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        b.counter("only_b").inc(1)
        a.gauge("depth").set(2)
        b.gauge("depth").set(5)
        a.histogram("lat").observe(0.01)
        b.histogram("lat").observe(0.02)
        a.merge(b)
        assert a.counter("n").value == 7.0
        assert a.counter("only_b").value == 1.0
        assert a.gauge("depth").value == 5.0  # max wins
        assert a.histogram("lat").count == 2
        assert a.histogram("lat").sum == pytest.approx(0.03)

    def test_snapshot_and_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("events", stage="guard").inc(7)
        reg.histogram("lat").observe(0.5)
        path = tmp_path / "metrics.jsonl"
        reg.export_jsonl(path, answers=100)
        reg.export_jsonl(path, answers=200)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["answers"] == 100
        by_name = {s["name"]: s for s in first["series"]}
        assert by_name["events"]["value"] == 7.0
        assert by_name["events"]["labels"] == {"stage": "guard"}
        assert by_name["lat"]["count"] == 1

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("events_total", stage="guard").inc(3)
        reg.gauge("chain_depth").set(4)
        reg.histogram("lat_seconds").observe(0.01)
        text = reg.render_prometheus()
        assert "# TYPE events_total counter" in text
        assert 'events_total{stage="guard"} 3' in text
        assert "chain_depth 4" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.01" in text
