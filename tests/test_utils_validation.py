"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_probability,
    check_probability_vector,
    clamp_probability,
    normalise,
)


class TestCheckProbability:
    def test_valid_value_passes_through(self):
        assert check_probability(0.4) == pytest.approx(0.4)

    def test_boundaries(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_tiny_overshoot_clipped(self):
        assert check_probability(1.0 + 1e-12) == 1.0
        assert check_probability(-1e-12) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.2)

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            check_probability(float("nan"))


class TestCheckProbabilityVector:
    def test_valid_vector(self):
        out = check_probability_vector([0.2, 0.3, 0.5])
        assert np.allclose(out, [0.2, 0.3, 0.5])

    def test_sum_not_one_raises(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.2])

    def test_negative_entry_raises(self):
        with pytest.raises(ValueError):
            check_probability_vector([1.2, -0.2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            check_probability_vector([])

    def test_two_dimensional_raises(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)) / 4)


class TestNormalise:
    def test_basic(self):
        assert np.allclose(normalise([1.0, 3.0]), [0.25, 0.75])

    def test_already_normalised(self):
        assert np.allclose(normalise([0.5, 0.5]), [0.5, 0.5])

    def test_all_zero_gives_uniform(self):
        assert np.allclose(normalise([0.0, 0.0, 0.0, 0.0]), [0.25] * 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            normalise([1.0, -1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalise([])

    def test_result_sums_to_one(self):
        out = normalise([0.1, 7.3, 2.2, 0.4])
        assert out.sum() == pytest.approx(1.0)


class TestClampProbability:
    def test_inside_unchanged(self):
        assert clamp_probability(0.3) == pytest.approx(0.3)

    def test_zero_is_floored(self):
        assert clamp_probability(0.0) > 0.0

    def test_one_is_capped(self):
        assert clamp_probability(1.0) < 1.0

    def test_custom_floor(self):
        assert clamp_probability(0.0, floor=0.01) == pytest.approx(0.01)
