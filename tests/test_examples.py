"""Smoke tests for the runnable examples.

The heavier examples (full Beijing campaigns) are exercised by the benchmark
harness; here we make sure every example module imports cleanly and the two
fast ones run end to end.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "online_campaign",
    "worker_analysis",
    "custom_dataset",
    "scalability_study",
    "serving_telemetry",
]


class TestExamplesImport:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_module_loads_and_exposes_main(self, name):
        module = load_example(name)
        assert callable(module.main)


class TestFastExamplesRun:
    def test_custom_dataset_runs(self, capsys):
        module = load_example("custom_dataset")
        module.main()
        output = capsys.readouterr().out
        assert "inferred labels for 6 hand-written POIs" in output
        assert "Olympic Forest Park" in output

    def test_custom_dataset_builds_valid_dataset(self):
        module = load_example("custom_dataset")
        dataset = module.build_dataset()
        assert len(dataset) == 6
        assert all(sum(task.truth) >= 1 for task in dataset.tasks)
