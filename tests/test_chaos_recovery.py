"""Chaos suite: deterministic fault injection, crashes, and recovery equivalence.

Every test here is marked ``chaos`` (run alone with ``-m chaos``).  The
central claims:

* crashing a journaled serving session at an arbitrary point — including with
  a torn journal tail or a corrupt newest checkpoint — and recovering with
  :func:`repro.serving.recover_ingestor` reproduces the uncrashed run's live
  store to <= 1e-9 (bit-equal in practice);
* a storm of injected update/publish failures never raises out of the serving
  loop: batches are dropped, the store degrades, and the frontend keeps
  serving the last good snapshot (counted as stale serves).
"""

import os

import numpy as np
import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    AnswerJournal,
    CheckpointManager,
    EventGuard,
    FaultInjector,
    GuardConfig,
    IngestConfig,
    InjectedFault,
    OnlineServingService,
    ServingConfig,
    SimulatedCrash,
    SnapshotStore,
    recover_ingestor,
)

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------- fixtures
def make_platform(small_dataset, worker_pool, distance_model, budget=200):
    return CrowdPlatform(
        dataset=small_dataset,
        worker_pool=worker_pool,
        budget=Budget(total=budget),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
        seed=7,
    )


@pytest.fixture(scope="module")
def event_stream(small_dataset, worker_pool, distance_model):
    """A deterministic 72-event stream (distinct (worker, task) pairs)."""
    simulator = AnswerSimulator(distance_model, noise=0.0)
    events = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            events.append(
                AnswerEvent(
                    simulator.sample_answer(profile, task, seed=3000 + index),
                    time=float(index),
                )
            )
            index += 1
    return events


# CI runs this suite twice: SERVING_PIPELINE=1 (default, background refreshes
# overlapped with ingest) and SERVING_PIPELINE=0 (the serial oracle loop).
PIPELINE = os.environ.get("SERVING_PIPELINE", "1") != "0"

CHAOS_CONFIG = dict(
    max_batch_answers=8,
    max_batch_delay=4.0,
    full_refresh_interval=30,
    checkpoint_interval=20,
    pipeline=PIPELINE,
)


def fresh_ingestor(small_dataset, worker_pool, distance_model, **kwargs):
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    snapshots = SnapshotStore()
    config = IngestConfig(**CHAOS_CONFIG)
    return (
        AnswerIngestor(inference, snapshots, config=config, **kwargs),
        snapshots,
    )


@pytest.fixture(scope="module")
def uncrashed_store(small_dataset, worker_pool, distance_model, event_stream):
    """The reference live store after an uncrashed replay of the stream."""
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    ingestor = AnswerIngestor(
        inference, SnapshotStore(), config=IngestConfig(**CHAOS_CONFIG)
    )
    for event in event_stream:
        ingestor.submit(event)
    ingestor.flush()
    return ingestor._updater.live_store, ingestor.stats


def run_durable_until_crash(state_dir, small_dataset, worker_pool, distance_model,
                            event_stream, crash_after):
    """Feed the stream into a journaled+checkpointed ingestor, crash mid-way."""
    faults = FaultInjector()
    faults.arm("ingest.submit", after=crash_after + 1, crash=True)
    journal = AnswerJournal(state_dir / "journal", max_segment_records=16)
    ingestor, _ = fresh_ingestor(
        small_dataset,
        worker_pool,
        distance_model,
        journal=journal,
        checkpoints=CheckpointManager(state_dir / "checkpoints"),
        faults=faults,
    )
    with pytest.raises(SimulatedCrash):
        for event in event_stream:
            ingestor.submit(event)
    journal.close()
    return ingestor


def recover_and_finish(state_dir, small_dataset, worker_pool, distance_model,
                       event_stream):
    """Recover from ``state_dir`` and feed the not-yet-journaled remainder."""
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    ingestor, report = recover_ingestor(
        state_dir,
        inference=inference,
        snapshots=SnapshotStore(),
        ingest_config=IngestConfig(**CHAOS_CONFIG),
    )
    for event in event_stream[ingestor.journal.last_seq:]:
        ingestor.submit(event)
    ingestor.flush()
    ingestor.journal.close()
    return ingestor, report


# ------------------------------------------------------------- fault injector
class TestFaultInjector:
    def test_fires_at_the_armed_hit(self):
        faults = FaultInjector()
        faults.arm("p", after=3)
        faults.check("p")
        faults.check("p")
        with pytest.raises(InjectedFault):
            faults.check("p")
        faults.check("p")  # times=1: only one raise
        assert faults.hits["p"] == 4
        assert faults.raised["p"] == 1

    def test_times_controls_consecutive_raises(self):
        faults = FaultInjector()
        faults.arm("p", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.check("p")
        faults.check("p")
        assert faults.raised["p"] == 2

    def test_crash_raises_base_exception(self):
        faults = FaultInjector()
        faults.arm("p", crash=True)
        with pytest.raises(SimulatedCrash):
            faults.check("p")
        assert not isinstance(SimulatedCrash("x"), Exception)

    def test_disarm_and_validation(self):
        faults = FaultInjector()
        faults.arm("p")
        faults.disarm("p")
        faults.check("p")
        assert faults.raised.get("p", 0) == 0
        with pytest.raises(ValueError):
            faults.arm("p", after=0)
        with pytest.raises(ValueError):
            faults.arm("p", times=0)


# -------------------------------------------------------- crash ↔ recovery
class TestCrashRecoveryEquivalence:
    @pytest.mark.parametrize("crash_after", [3, 21, 47])
    def test_recovered_store_matches_uncrashed(
        self, tmp_path, small_dataset, worker_pool, distance_model,
        event_stream, uncrashed_store, crash_after,
    ):
        reference_store, reference_stats = uncrashed_store
        crashed = run_durable_until_crash(
            tmp_path, small_dataset, worker_pool, distance_model,
            event_stream, crash_after,
        )
        assert crashed.stats.journal_appends == crash_after

        recovered, report = recover_and_finish(
            tmp_path, small_dataset, worker_pool, distance_model, event_stream
        )
        if crash_after >= CHAOS_CONFIG["checkpoint_interval"]:
            assert not report.cold_start
            assert report.checkpoint_seq > 0
        else:
            assert report.cold_start

        diff = reference_store.max_difference(recovered._updater.live_store)
        assert diff <= 1e-9
        np.testing.assert_array_equal(
            reference_store.p_qualified, recovered._updater.live_store.p_qualified
        )
        np.testing.assert_array_equal(
            reference_store.label_probs, recovered._updater.live_store.label_probs
        )
        # Batch boundaries reproduced exactly, and the restore never flattened
        # the answer log (the live tensor was rebuilt from exported rows).
        assert recovered.stats.answers == reference_stats.answers
        assert recovered.stats.batches == reference_stats.batches
        assert recovered.stats.full_refreshes == reference_stats.full_refreshes
        assert recovered.stats.log_flattens == 0

    def test_torn_journal_tail_is_survivable(
        self, tmp_path, small_dataset, worker_pool, distance_model,
        event_stream, uncrashed_store,
    ):
        from repro.serving.faults import tear_journal_tail

        reference_store, _ = uncrashed_store
        crashed = run_durable_until_crash(
            tmp_path, small_dataset, worker_pool, distance_model,
            event_stream, crash_after=47,
        )
        # The crash additionally tore the final record mid-write.
        segments = sorted((tmp_path / "journal").glob("*.wal"))
        tear_journal_tail(segments[-1], drop_bytes=5)

        recovered, report = recover_and_finish(
            tmp_path, small_dataset, worker_pool, distance_model, event_stream
        )
        assert report.torn_tail
        # The torn event (seq 47) was re-submitted from the source stream, so
        # the final state still matches the uncrashed run.
        assert reference_store.max_difference(recovered._updater.live_store) <= 1e-9

    def test_corrupt_newest_checkpoint_falls_back(
        self, tmp_path, small_dataset, worker_pool, distance_model,
        event_stream, uncrashed_store,
    ):
        from repro.serving.faults import corrupt_file

        reference_store, _ = uncrashed_store
        run_durable_until_crash(
            tmp_path, small_dataset, worker_pool, distance_model,
            event_stream, crash_after=57,
        )
        checkpoints = sorted((tmp_path / "checkpoints").glob("ckpt-*.npz"))
        # Serial mode cuts at 20 and 40; pipelined mode defers the cut due at
        # 40 past the in-flight background refresh and lands it at 50.
        assert len(checkpoints) == 2
        corrupt_file(checkpoints[-1])

        recovered, report = recover_and_finish(
            tmp_path, small_dataset, worker_pool, distance_model, event_stream
        )
        assert report.corrupt_checkpoints_skipped == 1
        assert report.checkpoint_seq == 20  # fell back to the older checkpoint
        assert report.replayed_events == 37  # 21..57 replayed from the journal
        assert reference_store.max_difference(recovered._updater.live_store) <= 1e-9

    def test_crash_during_background_refresh_recovers(
        self, tmp_path, small_dataset, worker_pool, distance_model,
        event_stream, uncrashed_store,
    ):
        """Process death *inside* an overlapped background fit: the worker
        captures the crash, the ingest thread re-raises it at the
        deterministic integration point, and journal replay reproduces the
        uncrashed store bit-equal."""
        if not PIPELINE:
            pytest.skip("background refreshes only exist in pipelined mode")
        reference_store, _ = uncrashed_store
        faults = FaultInjector()
        faults.arm("refresh.background", crash=True)
        journal = AnswerJournal(tmp_path / "journal", max_segment_records=16)
        ingestor, _ = fresh_ingestor(
            small_dataset,
            worker_pool,
            distance_model,
            journal=journal,
            checkpoints=CheckpointManager(tmp_path / "checkpoints"),
            faults=faults,
        )
        with pytest.raises(SimulatedCrash):
            for event in event_stream:
                ingestor.submit(event)
        journal.close()
        # The fit was launched overlapped; the crash surfaced on the ingest
        # thread, not silently on the worker.
        assert ingestor.stats.refreshes_overlapped == 1

        recovered, report = recover_and_finish(
            tmp_path, small_dataset, worker_pool, distance_model, event_stream
        )
        assert not report.cold_start
        diff = reference_store.max_difference(recovered._updater.live_store)
        assert diff <= 1e-9
        np.testing.assert_array_equal(
            reference_store.p_qualified, recovered._updater.live_store.p_qualified
        )

    def test_checkpoints_truncate_the_journal(
        self, tmp_path, small_dataset, worker_pool, distance_model, event_stream
    ):
        journal = AnswerJournal(tmp_path / "journal", max_segment_records=8)
        ingestor, _ = fresh_ingestor(
            small_dataset,
            worker_pool,
            distance_model,
            journal=journal,
            checkpoints=CheckpointManager(tmp_path / "checkpoints"),
        )
        for event in event_stream:
            ingestor.submit(event)
        ingestor.flush()
        assert ingestor.stats.checkpoints_written >= 2
        assert journal.stats.segments_truncated > 0
        # Everything the journal still holds is after the last checkpoint.
        first_kept = min(seq for seq, _ in journal.replay())
        assert first_kept > ingestor.stats.checkpoints_written * 0  # non-empty
        journal.close()


# ----------------------------------------------------------- degraded serving
class TestDegradedMode:
    def test_update_failure_storm_never_raises(
        self, small_dataset, worker_pool, distance_model, event_stream
    ):
        faults = FaultInjector()
        ingestor, snapshots = fresh_ingestor(
            small_dataset, worker_pool, distance_model, faults=faults
        )
        ingestor._config.max_update_retries = 1
        ingestor._config.retry_backoff = 0.0

        # Warm up: clean batches (time-triggered, 5 events each) so a good
        # snapshot exists.
        for event in event_stream[:16]:
            ingestor.submit(event)
        assert ingestor.stats.batches == 3
        good_version = snapshots.latest().version

        # Storm: every update attempt fails (injected), incl. the retries.
        faults.arm("apply", times=1000)
        faults.arm("refresh", times=1000)
        for event in event_stream[16:40]:
            ingestor.submit(event)  # must not raise
        assert ingestor.stats.dropped_batches == 5
        assert ingestor.stats.answers_dropped == 25
        assert ingestor.stats.update_failures >= 10  # 2 attempts per batch
        assert snapshots.degraded
        assert snapshots.latest().version == good_version  # last good snapshot

        # The storm passes; the next batch heals the store.
        faults.disarm()
        for event in event_stream[40:48]:
            ingestor.submit(event)
        assert not snapshots.degraded
        assert snapshots.latest().version > good_version
        assert snapshots.degraded_marks == 1  # one episode, not one per batch

    def test_publish_failure_marks_degraded(
        self, small_dataset, worker_pool, distance_model, event_stream
    ):
        faults = FaultInjector()
        ingestor, snapshots = fresh_ingestor(
            small_dataset, worker_pool, distance_model, faults=faults
        )
        ingestor._config.max_update_retries = 0
        for event in event_stream[:8]:
            ingestor.submit(event)
        faults.arm("publish", times=1000)
        for event in event_stream[8:16]:
            ingestor.submit(event)
        assert ingestor.stats.publish_failures >= 1
        assert snapshots.degraded
        # The updates themselves succeeded — only the publishes were lost; the
        # next clean flush publishes the accumulated dirty rows.
        faults.disarm()
        for event in event_stream[16:24]:
            ingestor.submit(event)
        assert not snapshots.degraded

    def test_transient_failure_is_retried_transparently(
        self, small_dataset, worker_pool, distance_model, event_stream
    ):
        faults = FaultInjector()
        ingestor, snapshots = fresh_ingestor(
            small_dataset, worker_pool, distance_model, faults=faults
        )
        ingestor._config.retry_backoff = 0.0
        faults.arm("refresh", times=1)  # first attempt fails, retry succeeds
        for event in event_stream[:8]:
            ingestor.submit(event)
        assert ingestor.stats.update_retries == 1
        assert ingestor.stats.dropped_batches == 0
        assert not snapshots.degraded
        assert snapshots.latest() is not None

    def test_journal_append_failure_drops_the_event(
        self, tmp_path, small_dataset, worker_pool, distance_model, event_stream
    ):
        faults = FaultInjector()
        journal = AnswerJournal(tmp_path / "journal")
        ingestor, _ = fresh_ingestor(
            small_dataset, worker_pool, distance_model,
            journal=journal, faults=faults,
        )
        faults.arm("journal.append", after=3)  # third event cannot be journaled
        for event in event_stream[:8]:
            ingestor.submit(event)
        assert ingestor.stats.journal_append_failures == 1
        assert ingestor.stats.journal_appends == 7
        # The dropped event never reached the model: 7 applied, not 8.
        ingestor.flush()
        assert ingestor.stats.answers == 7
        journal.close()

    def test_checkpoint_failure_is_not_fatal(
        self, tmp_path, small_dataset, worker_pool, distance_model, event_stream
    ):
        faults = FaultInjector()
        journal = AnswerJournal(tmp_path / "journal")
        ingestor, _ = fresh_ingestor(
            small_dataset, worker_pool, distance_model,
            journal=journal,
            checkpoints=CheckpointManager(tmp_path / "checkpoints"),
            faults=faults,
        )
        faults.arm("checkpoint.save")
        for event in event_stream:
            ingestor.submit(event)
        ingestor.flush()
        assert ingestor.stats.checkpoint_failures == 1
        assert ingestor.stats.checkpoints_written >= 1  # later ones succeeded
        journal.close()

    def test_frontend_serves_stale_through_the_storm(
        self, small_dataset, worker_pool, distance_model
    ):
        """End-to-end: a refresh-failure storm degrades the store while the
        frontend keeps answering every request off the last good snapshot —
        zero raised exceptions, nonzero staleness counters."""
        platform = make_platform(small_dataset, worker_pool, distance_model, budget=120)
        faults = FaultInjector()
        config = ServingConfig(
            tasks_per_worker=2,
            ingest=IngestConfig(
                max_batch_answers=4,
                max_batch_delay=4.0,
                full_refresh_interval=40,
                max_update_retries=1,
                retry_backoff=0.0,
                pipeline=PIPELINE,
            ),
            seed=13,
            faults=faults,
        )
        service = OnlineServingService(platform, config=config)
        # First rounds run clean, then every update fails for the rest of the
        # run (also the final flush — disarm before it so run() completes the
        # closing refresh cleanly... no: keep it failing; the report must
        # still come back without an exception).
        faults.arm("apply", after=5, times=10_000)
        faults.arm("refresh", after=2, times=10_000)
        report = service.run(max_rounds=12)

        assert report.ingest.dropped_batches > 0
        assert report.degraded_marks >= 1
        assert report.frontend.stale_serves > 0
        assert report.frontend.requests > 0
        summary = report.summary()
        assert "faults absorbed" in summary
        assert "stale serves" in summary


# ----------------------------------------------------- service-level recovery
class TestServiceResume:
    def test_crash_and_resume_through_the_service(
        self, tmp_path, small_dataset, worker_pool, distance_model
    ):
        state_dir = tmp_path / "state"
        ingest = dict(
            max_batch_answers=4, max_batch_delay=4.0,
            full_refresh_interval=40, checkpoint_interval=12,
            pipeline=PIPELINE,
        )
        faults = FaultInjector()
        faults.arm("ingest.submit", after=30, crash=True)
        config = ServingConfig(
            tasks_per_worker=2,
            ingest=IngestConfig(**ingest),
            seed=13,
            state_dir=state_dir,
            faults=faults,
            guard=GuardConfig(),
        )
        platform = make_platform(small_dataset, worker_pool, distance_model)
        service = OnlineServingService(platform, config=config)
        with pytest.raises(SimulatedCrash):
            service.run()
        crashed_appends = service.ingestor.stats.journal_appends
        assert crashed_appends == 29
        service.close()

        # Resume: a fresh platform (same seeds) and a resuming service.
        resumed_platform = make_platform(small_dataset, worker_pool, distance_model)
        resumed = OnlineServingService(
            resumed_platform,
            config=ServingConfig(
                tasks_per_worker=2,
                ingest=IngestConfig(**ingest),
                seed=13,
                state_dir=state_dir,
                resume=True,
                guard=GuardConfig(),
            ),
        )
        assert resumed.recovery is not None
        assert (
            resumed.recovery.checkpoint_seq + resumed.recovery.replayed_events
            == crashed_appends
        )
        # The restored snapshot is live before any new event arrives.
        assert resumed.snapshots.latest() is not None
        report = resumed.run(max_rounds=10)
        resumed.close()
        assert report.recovery is not None
        assert "recovery:" in report.summary()
        assert report.ingest.answers > crashed_appends  # kept serving
        assert report.ingest.log_flattens == 0  # restore never flattened

    def test_resume_requires_state_dir(self):
        with pytest.raises(ValueError):
            ServingConfig(resume=True)


# ------------------------------------------------------------ trust x chaos
class TestTrustRecovery:
    """Crash-recovery must restore the trust ladder, not just the model."""

    def _spam_scenario(self, state_dir, faults=None, resume=False):
        from dataclasses import replace

        from repro.framework.scenarios import build_scenario

        scenario = build_scenario(
            "spam", num_tasks=40, num_workers=16, budget=600, seed=42
        )
        config = replace(
            scenario.config,
            state_dir=state_dir,
            resume=resume,
            faults=faults,
            ingest=replace(
                scenario.config.ingest,
                checkpoint_interval=150,
                pipeline=PIPELINE,
            ),
        )
        return scenario.platform, config

    def test_crash_and_recover_restores_reputation_state(self, tmp_path):
        state_dir = tmp_path / "state"
        faults = FaultInjector()
        faults.arm("ingest.submit", after=500, crash=True)
        platform, config = self._spam_scenario(state_dir, faults=faults)
        service = OnlineServingService(platform, config=config)
        with pytest.raises(SimulatedCrash):
            service.run()
        crashed_state = service.reputation.state_dict()
        service.close()
        # The tracker had judged workers before the crash.
        assert crashed_state["posteriors"]

        platform, config = self._spam_scenario(state_dir, resume=True)
        resumed = OnlineServingService(platform, config=config)
        assert resumed.recovery is not None
        # Checkpoint restore + journal replay rebuilt the ladder bit-equal:
        # tiers, streak counters, smoothed posteriors, version, transitions.
        assert resumed.reputation.state_dict() == crashed_state
        report = resumed.run(max_rounds=10)
        resumed.close()
        assert report.trust is not None
        assert report.ingest.answers > 499  # kept serving after recovery

    def test_quarantines_survive_crash_and_keep_biting(self, tmp_path):
        state_dir = tmp_path / "state"
        faults = FaultInjector()
        faults.arm("ingest.submit", after=560, crash=True)
        platform, config = self._spam_scenario(state_dir, faults=faults)
        service = OnlineServingService(platform, config=config)
        with pytest.raises(SimulatedCrash):
            service.run()
        quarantined = service.reputation.quarantined_ids
        service.close()
        assert quarantined  # adversaries were caught before the crash

        platform, config = self._spam_scenario(state_dir, resume=True)
        resumed = OnlineServingService(platform, config=config)
        assert resumed.reputation.quarantined_ids == quarantined
        report = resumed.run(max_rounds=20)
        resumed.close()
        # The restored quarantine set is enforced by the resumed frontend
        # and intake, not merely remembered.  (Re-admissions remain possible
        # — the ladder keeps evaluating — so the closing count may shrink.)
        assert report.trust is not None
        assert report.trust.quarantined > 0
        assert (
            report.frontend.blocked_requests + report.ingest.events_rejected_reputation
        ) > 0


class TestDecayedStatsRecovery:
    """Crash-recovery equivalence extends to decayed sufficient statistics."""

    DECAY_CONFIG = dict(CHAOS_CONFIG, stat_decay=0.9)

    def test_recovered_decayed_store_matches_uncrashed(
        self, tmp_path, small_dataset, worker_pool, distance_model, event_stream
    ):
        def inference():
            return LocationAwareInference(
                small_dataset.tasks, worker_pool.workers, distance_model
            )

        reference = AnswerIngestor(
            inference(), SnapshotStore(), config=IngestConfig(**self.DECAY_CONFIG)
        )
        for event in event_stream:
            reference.submit(event)
        reference.flush()

        faults = FaultInjector()
        faults.arm("ingest.submit", after=48, crash=True)
        journal = AnswerJournal(tmp_path / "journal", max_segment_records=16)
        crashed = AnswerIngestor(
            inference(),
            SnapshotStore(),
            config=IngestConfig(**self.DECAY_CONFIG),
            journal=journal,
            checkpoints=CheckpointManager(tmp_path / "checkpoints"),
            faults=faults,
        )
        with pytest.raises(SimulatedCrash):
            for event in event_stream:
                crashed.submit(event)
        journal.close()

        recovered, report = recover_ingestor(
            tmp_path,
            inference=inference(),
            snapshots=SnapshotStore(),
            ingest_config=IngestConfig(**self.DECAY_CONFIG),
        )
        # The newest checkpoint carried the decay epoch and per-row arrival
        # stamps, so replayed rows age exactly as the live run aged them.
        assert not report.cold_start
        for event in event_stream[recovered.journal.last_seq:]:
            recovered.submit(event)
        recovered.flush()
        recovered.journal.close()

        diff = reference._updater.live_store.max_difference(
            recovered._updater.live_store
        )
        assert diff <= 1e-9
        assert recovered.stats.full_refreshes == reference.stats.full_refreshes
