"""Vectorized vs reference AccOpt: the two engines must assign identically.

The vectorized engine replaces the reference's per-pair scalar scoring with the
batched kernels of :mod:`repro.core.accuracy_kernel`; both implement the exact
greedy Algorithm 1, so on the same inputs they must produce the *same
assignments*, not merely similar ones.  These tests pin that, from single
batches up to a full seeded campaign where every round's assignment feeds the
next round's inference.
"""

from __future__ import annotations

import pytest

from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.core.params import ModelParameters
from repro.data.models import AnswerSet
from repro.framework.config import FrameworkConfig
from repro.framework.framework import PoiLabellingFramework


@pytest.fixture()
def fitted_parameters(small_dataset, worker_pool, distance_model, collected_answers):
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    return model.parameters


def build_pair(small_dataset, worker_pool, distance_model, parameters=None):
    vectorized = AccOptAssigner(
        small_dataset.tasks,
        worker_pool.workers,
        distance_model,
        parameters,
        engine="vectorized",
    )
    reference = AccOptAssigner(
        small_dataset.tasks,
        worker_pool.workers,
        distance_model,
        parameters,
        engine="reference",
    )
    return vectorized, reference


class TestBatchEquivalence:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_identical_on_fitted_parameters(
        self,
        small_dataset,
        worker_pool,
        distance_model,
        fitted_parameters,
        collected_answers,
        h,
    ):
        vectorized, reference = build_pair(
            small_dataset, worker_pool, distance_model, fitted_parameters
        )
        workers = worker_pool.worker_ids
        assert vectorized.assign(workers, h, collected_answers) == reference.assign(
            workers, h, collected_answers
        )

    def test_identical_on_default_priors_and_empty_log(
        self, small_dataset, worker_pool, distance_model
    ):
        vectorized, reference = build_pair(
            small_dataset, worker_pool, distance_model, ModelParameters()
        )
        workers = worker_pool.worker_ids
        assert vectorized.assign(workers, 2, AnswerSet()) == reference.assign(
            workers, 2, AnswerSet()
        )

    def test_identical_on_tied_gains_and_unsorted_workers(self, small_dataset):
        """Exactly tied gains (co-located workers on cold-start priors) must
        break identically in both engines regardless of the caller's
        available_workers order."""
        from repro.data.models import Worker
        from repro.spatial.distance import DistanceModel

        location = small_dataset.tasks[0].location
        workers = [
            Worker("w2", (location,)),
            Worker("w1", (location,)),
        ]
        tasks = small_dataset.tasks[:3]
        distance_model = DistanceModel(max_distance=small_dataset.max_distance)
        vectorized = AccOptAssigner(
            tasks, workers, distance_model, ModelParameters(), engine="vectorized"
        )
        reference = AccOptAssigner(
            tasks, workers, distance_model, ModelParameters(), engine="reference"
        )
        for order in (["w2", "w1"], ["w1", "w2"]):
            assert vectorized.assign(order, 2, AnswerSet()) == reference.assign(
                order, 2, AnswerSet()
            )

    def test_identical_across_tentative_rounds(
        self,
        small_dataset,
        worker_pool,
        distance_model,
        fitted_parameters,
        collected_answers,
    ):
        """Repeated batches over a growing answer log stay in lockstep."""
        vectorized, reference = build_pair(
            small_dataset, worker_pool, distance_model, fitted_parameters
        )
        answers = collected_answers.copy()
        workers = worker_pool.worker_ids[:4]
        for _ in range(3):
            assignment_v = vectorized.assign(workers, 2, answers)
            assignment_r = reference.assign(workers, 2, answers)
            assert assignment_v == assignment_r
            # Mark the assigned pairs as answered so the next round differs.
            from repro.data.models import Answer

            for worker_id, task_ids in assignment_v.items():
                for task_id in task_ids:
                    labels = small_dataset.task_index[task_id].num_labels
                    answers.add(Answer(worker_id, task_id, tuple([1] * labels)))


class TestCampaignEquivalence:
    def test_seeded_campaign_is_identical_end_to_end(
        self, small_dataset, worker_pool, distance_model
    ):
        """A full seeded campaign (assignment → simulated answers → inference →
        assignment ...) produces the identical answer log and accuracy under
        both engines."""
        from repro.crowd.answer_model import AnswerSimulator
        from repro.crowd.arrival import UniformRandomArrival
        from repro.crowd.budget import Budget
        from repro.crowd.platform import CrowdPlatform

        def run(engine: str):
            platform = CrowdPlatform(
                dataset=small_dataset,
                worker_pool=worker_pool,
                budget=Budget(total=60),
                distance_model=distance_model,
                answer_simulator=AnswerSimulator(distance_model, noise=0.05),
                arrival_process=UniformRandomArrival(worker_pool, batch_size=3, seed=7),
                seed=7,
            )
            config = FrameworkConfig(
                budget=60,
                tasks_per_worker=2,
                workers_per_round=3,
                evaluation_checkpoints=(20, 40, 60),
                full_refresh_interval=30,
                inference=InferenceConfig(max_iterations=25),
            )
            inference = LocationAwareInference(
                small_dataset.tasks,
                worker_pool.workers,
                distance_model,
                config=config.inference,
            )
            assigner = AccOptAssigner(
                small_dataset.tasks,
                worker_pool.workers,
                distance_model,
                engine=engine,
            )
            framework = PoiLabellingFramework(
                platform, inference, assigner, config=config
            )
            result = framework.run()
            log = sorted(
                (a.worker_id, a.task_id, a.responses) for a in platform.answers
            )
            return result, log

        result_v, log_v = run("vectorized")
        result_r, log_r = run("reference")
        assert log_v == log_r
        assert result_v.assignments_spent == result_r.assignments_spent
        assert result_v.final_accuracy == pytest.approx(result_r.final_accuracy)
