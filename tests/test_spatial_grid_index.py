"""Tests for repro.spatial.grid_index, including a brute-force cross-check."""

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint, euclidean_distance
from repro.spatial.grid_index import GridIndex


@pytest.fixture()
def bounds() -> BoundingBox:
    return BoundingBox(0.0, 0.0, 10.0, 10.0)


class TestGridIndexBasics:
    def test_insert_and_len(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(2, 2))
        assert len(index) == 2
        assert "a" in index
        assert set(index) == {"a", "b"}

    def test_invalid_cells_per_axis(self, bounds):
        with pytest.raises(ValueError):
            GridIndex(bounds, cells_per_axis=0)

    def test_reinsert_moves_item(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("a", GeoPoint(9, 9))
        assert len(index) == 1
        assert index.location_of("a") == GeoPoint(9, 9)

    def test_remove(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove("a")

    def test_insert_many(self, bounds):
        index = GridIndex(bounds)
        index.insert_many([("a", GeoPoint(1, 1)), ("b", GeoPoint(2, 2))])
        assert len(index) == 2

    def test_outside_points_are_clamped_not_lost(self, bounds):
        index = GridIndex(bounds)
        index.insert("far", GeoPoint(100, 100))
        assert index.nearest(GeoPoint(9, 9), count=1) == ["far"]


class TestNearestQueries:
    def test_single_nearest(self, bounds):
        index = GridIndex(bounds)
        index.insert("near", GeoPoint(1, 1))
        index.insert("far", GeoPoint(9, 9))
        assert index.nearest(GeoPoint(0, 0), count=1) == ["near"]

    def test_count_zero(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        assert index.nearest(GeoPoint(0, 0), count=0) == []

    def test_empty_index(self, bounds):
        assert GridIndex(bounds).nearest(GeoPoint(0, 0), count=3) == []

    def test_exclude(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(2, 2))
        assert index.nearest(GeoPoint(0, 0), count=1, exclude={"a"}) == ["b"]

    def test_count_larger_than_items(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        assert index.nearest(GeoPoint(0, 0), count=5) == ["a"]

    def test_matches_brute_force(self, bounds):
        rng = np.random.default_rng(42)
        index = GridIndex(bounds, cells_per_axis=8)
        points = {}
        for i in range(200):
            point = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            points[f"p{i}"] = point
            index.insert(f"p{i}", point)
        for _ in range(20):
            query = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            got = index.nearest(query, count=5)
            expected = sorted(
                points, key=lambda pid: (euclidean_distance(query, points[pid]), pid)
            )[:5]
            got_dists = [euclidean_distance(query, points[p]) for p in got]
            expected_dists = [euclidean_distance(query, points[p]) for p in expected]
            assert got_dists == pytest.approx(expected_dists)


class TestItemsWithin:
    def test_radius_query(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(5, 5))
        assert index.items_within(GeoPoint(0, 0), radius=2.0) == ["a"]

    def test_negative_radius_raises(self, bounds):
        with pytest.raises(ValueError):
            GridIndex(bounds).items_within(GeoPoint(0, 0), radius=-1.0)

    def test_matches_brute_force(self, bounds):
        rng = np.random.default_rng(7)
        index = GridIndex(bounds, cells_per_axis=16)
        points = {}
        for i in range(100):
            point = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            points[f"p{i}"] = point
            index.insert(f"p{i}", point)
        query = GeoPoint(5.0, 5.0)
        got = set(index.items_within(query, radius=2.5))
        expected = {
            pid for pid, point in points.items()
            if euclidean_distance(query, point) <= 2.5
        }
        assert got == expected


class TestItemsWithinMany:
    """The bulk CSR query must agree with a brute-force scan exactly."""

    def _populated(self, bounds, rng, count=120):
        index = GridIndex(bounds, cells_per_axis=16)
        points = {}
        for i in range(count):
            point = GeoPoint(float(rng.uniform(-2, 12)), float(rng.uniform(-2, 12)))
            points[f"p{i}"] = point
            index.insert(f"p{i}", point)
        return index, points

    @pytest.mark.parametrize("radius", [0.0, 0.7, 3.0, float("inf")])
    def test_matches_brute_force(self, bounds, radius):
        rng = np.random.default_rng(11)
        index, points = self._populated(bounds, rng)
        queries = [
            GeoPoint(float(rng.uniform(-3, 13)), float(rng.uniform(-3, 13)))
            for _ in range(40)
        ]
        indptr, positions, distances = index.items_within_many(queries, radius)
        item_ids = index.item_ids
        assert indptr[0] == 0 and indptr[-1] == positions.size == distances.size
        for i, query in enumerate(queries):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            got = sorted(item_ids[p] for p in positions[lo:hi])
            expected = sorted(
                pid
                for pid, point in points.items()
                if euclidean_distance(query, point) <= radius
            )
            assert got == expected
            # Positions are ascending per row; distances are the raw metric.
            assert np.all(np.diff(positions[lo:hi]) > 0)
            for p, d in zip(positions[lo:hi], distances[lo:hi]):
                assert d == pytest.approx(
                    euclidean_distance(query, points[item_ids[p]])
                )

    def test_scalar_items_within_delegates(self, bounds):
        rng = np.random.default_rng(13)
        index, points = self._populated(bounds, rng)
        for _ in range(10):
            query = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            expected = sorted(
                (
                    pid
                    for pid, point in points.items()
                    if euclidean_distance(query, point) <= 2.0
                ),
                key=str,
            )
            assert index.items_within(query, radius=2.0) == expected

    def test_snapshot_invalidated_by_mutation(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        indptr, positions, _ = index.items_within_many([GeoPoint(1, 1)], 1.0)
        assert positions.size == 1
        index.insert("b", GeoPoint(1.2, 1.0))
        _, positions, _ = index.items_within_many([GeoPoint(1, 1)], 1.0)
        assert positions.size == 2
        index.remove("a")
        _, positions, _ = index.items_within_many([GeoPoint(1, 1)], 1.0)
        assert positions.size == 1

    def test_empty_index_and_empty_queries(self, bounds):
        index = GridIndex(bounds)
        indptr, positions, distances = index.items_within_many(
            [GeoPoint(1, 1)], 5.0
        )
        assert indptr.tolist() == [0, 0]
        assert positions.size == 0 and distances.size == 0
        index.insert("a", GeoPoint(1, 1))
        indptr, positions, distances = index.items_within_many([], 5.0)
        assert indptr.tolist() == [0]
        assert positions.size == 0

    def test_invalid_arguments(self, bounds):
        index = GridIndex(bounds)
        with pytest.raises(ValueError):
            index.items_within_many([GeoPoint(0, 0)], -1.0)
        with pytest.raises(ValueError):
            index.items_within_many([GeoPoint(0, 0)], 1.0, chunk_size=0)

    def test_chunked_matches_unchunked(self, bounds):
        rng = np.random.default_rng(17)
        index, _ = self._populated(bounds, rng)
        queries = [
            GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            for _ in range(30)
        ]
        whole = index.items_within_many(queries, 2.0)
        chunked = index.items_within_many(queries, 2.0, chunk_size=7)
        for a, b in zip(whole, chunked):
            assert np.array_equal(a, b)


class TestCandidatePairs:
    def test_min_over_locations_matches_brute_force(self, bounds):
        rng = np.random.default_rng(23)
        index = GridIndex(bounds, cells_per_axis=16)
        points = {}
        for j in range(60):
            point = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            points[j] = point
            index.insert(j, point)
        worker_locations = [
            [
                GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
                for _ in range(int(rng.integers(1, 4)))
            ]
            for _ in range(15)
        ]
        radius = 2.0
        pairs = index.candidate_pairs(worker_locations, radius)
        assert pairs.num_rows == len(worker_locations)
        for i, locations in enumerate(worker_locations):
            cols, dists = pairs.row(i)
            expected = {}
            for j, point in points.items():
                best = min(
                    euclidean_distance(loc, point) for loc in locations
                )
                if best <= radius:
                    expected[j] = best
            got_ids = [pairs.item_ids[c] for c in cols]
            assert sorted(got_ids) == sorted(expected)
            for item_id, dist in zip(got_ids, dists):
                assert dist == pytest.approx(expected[item_id])

    def test_empty_worker_locations_rejected(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        with pytest.raises(ValueError):
            index.candidate_pairs([[]], 1.0)

    def test_no_items_in_radius(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(9, 9))
        pairs = index.candidate_pairs([[GeoPoint(0, 0)]], 1.0)
        assert pairs.nnz == 0
        assert pairs.indptr.tolist() == [0, 0]
