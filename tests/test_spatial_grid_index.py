"""Tests for repro.spatial.grid_index, including a brute-force cross-check."""

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint, euclidean_distance
from repro.spatial.grid_index import GridIndex


@pytest.fixture()
def bounds() -> BoundingBox:
    return BoundingBox(0.0, 0.0, 10.0, 10.0)


class TestGridIndexBasics:
    def test_insert_and_len(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(2, 2))
        assert len(index) == 2
        assert "a" in index
        assert set(index) == {"a", "b"}

    def test_invalid_cells_per_axis(self, bounds):
        with pytest.raises(ValueError):
            GridIndex(bounds, cells_per_axis=0)

    def test_reinsert_moves_item(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("a", GeoPoint(9, 9))
        assert len(index) == 1
        assert index.location_of("a") == GeoPoint(9, 9)

    def test_remove(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove("a")

    def test_insert_many(self, bounds):
        index = GridIndex(bounds)
        index.insert_many([("a", GeoPoint(1, 1)), ("b", GeoPoint(2, 2))])
        assert len(index) == 2

    def test_outside_points_are_clamped_not_lost(self, bounds):
        index = GridIndex(bounds)
        index.insert("far", GeoPoint(100, 100))
        assert index.nearest(GeoPoint(9, 9), count=1) == ["far"]


class TestNearestQueries:
    def test_single_nearest(self, bounds):
        index = GridIndex(bounds)
        index.insert("near", GeoPoint(1, 1))
        index.insert("far", GeoPoint(9, 9))
        assert index.nearest(GeoPoint(0, 0), count=1) == ["near"]

    def test_count_zero(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        assert index.nearest(GeoPoint(0, 0), count=0) == []

    def test_empty_index(self, bounds):
        assert GridIndex(bounds).nearest(GeoPoint(0, 0), count=3) == []

    def test_exclude(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(2, 2))
        assert index.nearest(GeoPoint(0, 0), count=1, exclude={"a"}) == ["b"]

    def test_count_larger_than_items(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        assert index.nearest(GeoPoint(0, 0), count=5) == ["a"]

    def test_matches_brute_force(self, bounds):
        rng = np.random.default_rng(42)
        index = GridIndex(bounds, cells_per_axis=8)
        points = {}
        for i in range(200):
            point = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            points[f"p{i}"] = point
            index.insert(f"p{i}", point)
        for _ in range(20):
            query = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            got = index.nearest(query, count=5)
            expected = sorted(
                points, key=lambda pid: (euclidean_distance(query, points[pid]), pid)
            )[:5]
            got_dists = [euclidean_distance(query, points[p]) for p in got]
            expected_dists = [euclidean_distance(query, points[p]) for p in expected]
            assert got_dists == pytest.approx(expected_dists)


class TestItemsWithin:
    def test_radius_query(self, bounds):
        index = GridIndex(bounds)
        index.insert("a", GeoPoint(1, 1))
        index.insert("b", GeoPoint(5, 5))
        assert index.items_within(GeoPoint(0, 0), radius=2.0) == ["a"]

    def test_negative_radius_raises(self, bounds):
        with pytest.raises(ValueError):
            GridIndex(bounds).items_within(GeoPoint(0, 0), radius=-1.0)

    def test_matches_brute_force(self, bounds):
        rng = np.random.default_rng(7)
        index = GridIndex(bounds, cells_per_axis=16)
        points = {}
        for i in range(100):
            point = GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)))
            points[f"p{i}"] = point
            index.insert(f"p{i}", point)
        query = GeoPoint(5.0, 5.0)
        got = set(index.items_within(query, radius=2.5))
        expected = {
            pid for pid, point in points.items()
            if euclidean_distance(query, point) <= 2.5
        }
        assert got == expected
