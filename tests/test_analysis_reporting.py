"""Tests for repro.analysis.reporting."""

import pytest

from repro.analysis.reporting import format_series_table, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.23456], ["b", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "1.235" in lines[2]

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_precision_controls_decimals(self):
        text = format_table(["x"], [[3.14159]], precision=1)
        assert "3.1" in text
        assert "3.14" not in text

    def test_no_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatSeriesTable:
    def test_columns_per_series(self):
        text = format_series_table(
            "budget", [600, 700], {"MV": [0.6, 0.65], "IM": [0.7, 0.75]}
        )
        lines = text.splitlines()
        assert "budget" in lines[0]
        assert "MV" in lines[0]
        assert "IM" in lines[0]
        assert len(lines) == 4

    def test_short_series_padded_with_dash(self):
        text = format_series_table("x", [1, 2, 3], {"s": [0.1]})
        assert text.splitlines()[-1].strip().endswith("-")

    def test_integer_x_values_preserved(self):
        text = format_series_table("x", [600], {"s": [0.5]})
        assert "600" in text
