"""Tests for repro.obs.trace: spans, ring export, phase timelines."""

import json
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PIPELINE_STAGES, PhaseTimeline, Tracer


def make_tracer(**kwargs):
    metrics = MetricsRegistry()
    return Tracer(metrics, **kwargs), metrics


class TestSpan:
    def test_span_records_duration_and_call(self):
        tracer, metrics = make_tracer()
        with tracer.span("apply", batch=1):
            time.sleep(0.001)
        hist = metrics.get("stage_seconds", stage="apply")
        assert hist.count == 1
        assert hist.sum >= 0.001
        assert metrics.get("stage_calls_total", stage="apply").value == 1.0

    def test_span_yields_running_timer_with_split(self):
        tracer, _ = make_tracer()
        with tracer.span("apply") as timer:
            assert timer.running
            assert timer.split() >= 0.0

    def test_exception_attributed_and_propagated(self):
        tracer, metrics = make_tracer()
        with pytest.raises(KeyError):
            with tracer.span("refresh"):
                raise KeyError("boom")
        assert metrics.get("stage_seconds", stage="refresh").count == 1
        errors = metrics.get("stage_errors_total", stage="refresh", error="KeyError")
        assert errors is not None and errors.value == 1.0

    def test_body_stopping_timer_is_tolerated(self):
        tracer, metrics = make_tracer()
        with tracer.span("apply") as timer:
            timer.stop()
        assert metrics.get("stage_seconds", stage="apply").count == 1

    def test_nested_spans_attribute_inclusively(self):
        tracer, metrics = make_tracer()
        with tracer.span("refresh"):
            with tracer.span("apply"):
                time.sleep(0.001)
        outer = metrics.get("stage_seconds", stage="refresh")
        inner = metrics.get("stage_seconds", stage="apply")
        assert outer.sum >= inner.sum  # parent includes child time

    def test_record_attributes_external_duration(self):
        tracer, metrics = make_tracer()
        tracer.record("journal", 0.25, batch=3)
        assert metrics.get("stage_seconds", stage="journal").sum == pytest.approx(0.25)

    def test_stage_totals(self):
        tracer, _ = make_tracer()
        tracer.record("guard", 0.1)
        tracer.record("guard", 0.2)
        tracer.record("apply", 0.5)
        totals = tracer.stage_totals()
        assert totals["guard"] == pytest.approx(0.3)
        assert totals["apply"] == pytest.approx(0.5)

    def test_metricless_tracer_is_inert(self):
        tracer = Tracer()
        with tracer.span("apply"):
            pass
        assert tracer.stage_totals() == {}


class TestTraceRing:
    def test_ring_bounded_and_exported(self, tmp_path):
        tracer, _ = make_tracer(ring_capacity=4)
        for i in range(10):
            with tracer.span("apply", batch=i):
                pass
        assert len(tracer.ring) == 4
        path = tmp_path / "trace.json"
        written = tracer.export_chrome(path)
        assert written == 4
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert [e["args"]["batch"] for e in events] == [6, 7, 8, 9]
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0 for e in events)

    def test_ring_records_nesting_depth_and_error(self):
        tracer, _ = make_tracer(ring_capacity=8)
        with pytest.raises(RuntimeError):
            with tracer.span("refresh"):
                with tracer.span("apply"):
                    raise RuntimeError("x")
        inner, outer = tracer.ring[0], tracer.ring[1]
        assert inner.name == "apply" and inner.depth == 1
        assert outer.name == "refresh" and outer.depth == 0
        assert inner.error == "RuntimeError" and outer.error == "RuntimeError"

    def test_no_ring_export_is_empty(self, tmp_path):
        tracer, _ = make_tracer()
        assert tracer.export_chrome(tmp_path / "t.json") == 0


class TestPhaseTimeline:
    def test_breakdown_quarters_difference_cumulative_totals(self):
        tracer, _ = make_tracer()
        timeline = PhaseTimeline(tracer)
        # Simulate a stream where refresh cost grows while apply stays flat.
        wall = 0.0
        for i in range(1, 9):
            tracer.record("apply", 0.1)
            tracer.record("refresh", 0.1 * i)
            wall += 0.1 + 0.1 * i + 0.05  # 0.05s unattributed per step
            timeline.mark(position=i * 100, wall_seconds=wall)
        breakdown = timeline.breakdown(num_quarters=4)
        assert breakdown.stages[:2] == ["apply", "refresh"]
        assert len(breakdown.quarters) == 4
        # Refresh share must grow quarter over quarter (the decay signature).
        shares = [q.share("refresh") for q in breakdown.quarters]
        assert shares == sorted(shares)
        # Quarter walls sum to the total wall; attribution below 100%.
        assert sum(q.wall_seconds for q in breakdown.quarters) == pytest.approx(wall)
        assert 0.0 < breakdown.attributed_fraction < 1.0
        assert breakdown.attributed_seconds == pytest.approx(
            sum(tracer.stage_totals().values())
        )

    def test_breakdown_without_marks_is_empty(self):
        tracer, _ = make_tracer()
        breakdown = PhaseTimeline(tracer).breakdown()
        assert breakdown.quarters == []
        assert breakdown.attributed_fraction == 0.0

    def test_stage_order_follows_pipeline(self):
        tracer, _ = make_tracer()
        timeline = PhaseTimeline(tracer)
        for stage in ("assign", "guard", "zz_custom", "refresh"):
            tracer.record(stage, 0.1)
        timeline.mark(position=10, wall_seconds=1.0)
        breakdown = timeline.breakdown(num_quarters=1)
        expected = [s for s in PIPELINE_STAGES if s in {"assign", "guard", "refresh"}]
        assert breakdown.stages == expected + ["zz_custom"]

    def test_render_mentions_stages_and_coverage(self):
        tracer, _ = make_tracer()
        timeline = PhaseTimeline(tracer)
        tracer.record("refresh", 0.6)
        tracer.record("apply", 0.3)
        timeline.mark(position=100, wall_seconds=1.0)
        text = timeline.breakdown().render()
        assert "refresh" in text and "apply" in text
        assert "90.0%" in text  # attributed coverage line

    def test_to_dict_is_json_safe(self):
        tracer, _ = make_tracer()
        timeline = PhaseTimeline(tracer)
        tracer.record("apply", 0.2)
        timeline.mark(position=4, wall_seconds=0.5)
        payload = timeline.breakdown().to_dict()
        json.dumps(payload)
        assert payload["attributed_fraction"] == pytest.approx(0.4)
        # With a single mark all progress collapses into the first quarter.
        assert payload["quarters"][0]["stage_shares"]["apply"] > 0
