"""Tests for repro.framework.experiment (the evaluation drivers)."""

import pytest

from repro.core.inference import InferenceConfig
from repro.framework.config import FrameworkConfig
from repro.framework.experiment import (
    build_distance_model,
    build_platform,
    build_worker_pool,
    compare_assigners,
    compare_inference_models,
    default_assigner_factories,
    default_inference_factories,
    subsample_answers,
)


class TestBuilders:
    def test_build_distance_model_uses_dataset_diameter(self, small_dataset):
        model = build_distance_model(small_dataset)
        assert model.max_distance == pytest.approx(small_dataset.max_distance)

    def test_build_worker_pool_covers_dataset(self, small_dataset):
        pool = build_worker_pool(small_dataset, seed=3)
        assert len(pool) > 0

    def test_build_platform_ready_to_run(self, small_dataset):
        platform = build_platform(small_dataset, budget=50, workers_per_round=3, seed=4)
        assert platform.budget.total == 50
        batch = platform.next_worker_batch()
        assert len(batch) == 3


class TestSubsampleAnswers:
    def test_subsample_size(self, collected_answers):
        subsample = subsample_answers(collected_answers, 10, seed=1)
        assert len(subsample) == 10

    def test_subsample_larger_than_corpus_returns_copy(self, collected_answers):
        subsample = subsample_answers(collected_answers, 10_000, seed=1)
        assert len(subsample) == len(collected_answers)

    def test_subsample_deterministic(self, collected_answers):
        a = subsample_answers(collected_answers, 12, seed=9)
        b = subsample_answers(collected_answers, 12, seed=9)
        assert sorted((x.worker_id, x.task_id) for x in a) == sorted(
            (x.worker_id, x.task_id) for x in b
        )

    def test_subsample_is_subset(self, collected_answers):
        subsample = subsample_answers(collected_answers, 8, seed=2)
        original_pairs = {(a.worker_id, a.task_id) for a in collected_answers}
        assert all((a.worker_id, a.task_id) in original_pairs for a in subsample)


class TestCompareInferenceModels:
    def test_all_methods_evaluated_at_all_budgets(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        factories = default_inference_factories(
            small_dataset,
            worker_pool,
            distance_model,
            inference_config=InferenceConfig(max_iterations=20),
        )
        budgets = [12, 24]
        result = compare_inference_models(
            small_dataset, collected_answers, budgets, factories, seed=5
        )
        assert result.budgets == budgets
        assert set(result.accuracy) == {"MV", "EM", "IM"}
        for name in result.accuracy:
            assert len(result.accuracy[name]) == 2
            assert len(result.runtime_ms[name]) == 2
            assert all(0.0 <= a <= 1.0 for a in result.accuracy[name])
            assert all(t >= 0.0 for t in result.runtime_ms[name])
        assert result.accuracy_of("IM", 24) == result.accuracy["IM"][1]


class TestCompareAssigners:
    def test_compare_assigners_produces_series_and_stats(self, small_dataset):
        config = FrameworkConfig(
            budget=60,
            tasks_per_worker=2,
            workers_per_round=3,
            evaluation_checkpoints=(30, 60),
            full_refresh_interval=30,
            inference=InferenceConfig(max_iterations=15),
        )
        pool = build_worker_pool(small_dataset, seed=8)
        distance_model = build_distance_model(small_dataset)
        factories = default_assigner_factories(small_dataset, pool, distance_model, seed=8)
        result = compare_assigners(
            small_dataset, config, assigner_factories=factories, worker_pool=pool, seed=8
        )
        assert set(result.accuracy) == {"Random", "SF", "AccOpt"}
        for name, series in result.accuracy.items():
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)
        for stats in result.stats.values():
            assert 0.0 <= stats.worker_quality <= 1.0
            assert sum(stats.assignment_distribution) == pytest.approx(100.0)
            assert 0.0 <= stats.average_acc <= 1.0
        assert set(result.framework_results) == {"Random", "SF", "AccOpt"}
