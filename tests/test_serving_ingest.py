"""Tests for repro.serving.ingest (micro-batching, refresh policy, stats)."""

import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import AnswerSet
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig
from repro.serving.snapshots import SnapshotStore


def make_events(small_dataset, worker_pool, distance_model, count, start_time=0.0, gap=0.1):
    """Deterministic stream of distinct (worker, task) answer events."""
    simulator = AnswerSimulator(distance_model, noise=0.0)
    events = []
    index = 0
    for profile in worker_pool:
        for task in small_dataset.tasks:
            if index >= count:
                return events
            events.append(
                AnswerEvent(
                    simulator.sample_answer(profile, task, seed=1000 + index),
                    time=start_time + gap * index,
                )
            )
            index += 1
    return events


@pytest.fixture()
def ingestor(small_dataset, worker_pool, distance_model):
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    snapshots = SnapshotStore()
    config = IngestConfig(
        max_batch_answers=4, max_batch_delay=10.0, full_refresh_interval=100
    )
    return AnswerIngestor(inference, snapshots, config=config), snapshots


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            IngestConfig(max_batch_answers=0)
        with pytest.raises(ValueError):
            IngestConfig(max_batch_delay=0.0)
        with pytest.raises(ValueError):
            IngestConfig(full_refresh_interval=0)
        with pytest.raises(ValueError):
            IngestConfig(local_iterations=0)


class TestMicroBatching:
    def test_count_trigger_flushes_batch(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = ingestor
        events = make_events(small_dataset, worker_pool, distance_model, 4)
        assert ingest.submit(events[0]) is None
        assert ingest.submit(events[1]) is None
        assert ingest.submit(events[2]) is None
        assert ingest.pending == 3
        snapshot = ingest.submit(events[3])
        assert snapshot is not None
        assert snapshot.version == 0
        assert ingest.pending == 0
        assert ingest.stats.answers == 4
        assert ingest.stats.batches == 1

    def test_time_window_trigger_flushes_batch(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, _ = ingestor
        events = make_events(small_dataset, worker_pool, distance_model, 2, gap=15.0)
        assert ingest.submit(events[0]) is None
        # Second event arrives past the 10s window measured from the first.
        assert ingest.submit(events[1]) is not None
        assert ingest.stats.batches == 1

    def test_tick_closes_an_aged_batch(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, _ = ingestor
        events = make_events(small_dataset, worker_pool, distance_model, 1)
        ingest.submit(events[0])
        assert ingest.tick(now=5.0) is None  # window not elapsed yet
        snapshot = ingest.tick(now=11.0)
        assert snapshot is not None
        assert ingest.pending == 0

    def test_flush_on_empty_buffer_is_noop(self, ingestor):
        ingest, snapshots = ingestor
        assert ingest.flush() is None
        assert len(snapshots) == 0

    def test_log_free_by_default(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        """The ingestor-owned log stays empty: updates run off the live tensor."""
        ingest, _ = ingestor
        events = make_events(small_dataset, worker_pool, distance_model, 8)
        for event in events:
            ingest.submit(event)
        assert not ingest.retains_answer_log
        assert len(ingest.answers) == 0
        assert ingest.stats.answers == 8
        assert ingest._updater.live_tensor.num_answers == 8

    def test_answers_accumulate_in_log_when_retained(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        config = IngestConfig(
            max_batch_answers=4,
            max_batch_delay=10.0,
            full_refresh_interval=100,
            retain_answer_log=True,
        )
        ingest = AnswerIngestor(inference, SnapshotStore(), config=config)
        events = make_events(small_dataset, worker_pool, distance_model, 8)
        for event in events:
            ingest.submit(event)
        assert ingest.retains_answer_log
        assert len(ingest.answers) == 8

    def test_shared_log_implies_retention(
        self, small_dataset, worker_pool, distance_model
    ):
        """A caller-provided AnswerSet keeps receiving every submitted answer."""
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        shared = AnswerSet()
        config = IngestConfig(
            max_batch_answers=4, max_batch_delay=10.0, full_refresh_interval=100
        )
        ingest = AnswerIngestor(
            inference, SnapshotStore(), config=config, answers=shared
        )
        for event in make_events(small_dataset, worker_pool, distance_model, 8):
            ingest.submit(event)
        assert ingest.retains_answer_log
        assert len(shared) == 8


class TestRefreshPolicy:
    def test_first_flush_is_a_full_refresh(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = ingestor
        for event in make_events(small_dataset, worker_pool, distance_model, 4):
            ingest.submit(event)
        assert ingest.stats.full_refreshes == 1
        assert ingest.stats.incremental_updates == 0
        assert snapshots.latest().source == "full_refresh"

    def test_batches_between_refreshes_are_incremental(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = ingestor
        for event in make_events(small_dataset, worker_pool, distance_model, 12):
            ingest.submit(event)
        assert ingest.stats.full_refreshes == 1
        assert ingest.stats.incremental_updates == 2
        assert snapshots.latest().source == "incremental"

    def test_interval_forces_periodic_full_refresh(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=32)
        config = IngestConfig(
            max_batch_answers=4,
            max_batch_delay=100.0,
            full_refresh_interval=8,
            pipeline=False,  # serial loop: the refresh runs inline
        )
        ingest = AnswerIngestor(inference, snapshots, config=config)
        for event in make_events(small_dataset, worker_pool, distance_model, 16):
            ingest.submit(event)
        # Batch 1 cold-starts with a full fit; batches 2-3 are incremental
        # (counter 4, 8); batch 4 sees the 8-answer interval elapsed.
        assert ingest.stats.full_refreshes == 2
        assert ingest.stats.incremental_updates == 2

    def test_interval_refresh_is_overlapped_when_pipelined(
        self, small_dataset, worker_pool, distance_model
    ):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        snapshots = SnapshotStore(max_snapshots=32)
        config = IngestConfig(
            max_batch_answers=4,
            max_batch_delay=100.0,
            full_refresh_interval=8,
            pipeline_lag_answers=4,
        )
        ingest = AnswerIngestor(inference, snapshots, config=config)
        for event in make_events(small_dataset, worker_pool, distance_model, 16):
            ingest.submit(event)
        # Batch 1 cold-starts serially; batch 4 trips the interval, is applied
        # incrementally, and launches a background fit (counted as a full
        # refresh at launch) that batch 5 would integrate.
        assert ingest.stats.full_refreshes == 2
        assert ingest.stats.refreshes_overlapped == 1
        assert ingest.stats.incremental_updates == 3
        ingest.close()

    def test_forced_full_flush_refits_without_new_answers(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = ingestor
        for event in make_events(small_dataset, worker_pool, distance_model, 4):
            ingest.submit(event)
        published = len(snapshots)
        snapshot = ingest.flush(now=99.0, full=True)
        assert snapshot is not None
        assert snapshot.source == "full_refresh"
        assert len(snapshots) == published + 1
        assert ingest.stats.answers == 4  # no phantom answers counted

    def test_every_flush_publishes_one_snapshot(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        ingest, snapshots = ingestor
        for event in make_events(small_dataset, worker_pool, distance_model, 12):
            ingest.submit(event)
        assert ingest.stats.snapshots_published == 3
        assert snapshots.versions == [0, 1, 2]

    def test_predictions_follow_snapshots(
        self, ingestor, small_dataset, worker_pool, distance_model
    ):
        """The published snapshot agrees with the live model's estimate."""
        ingest, snapshots = ingestor
        for event in make_events(small_dataset, worker_pool, distance_model, 4):
            ingest.submit(event)
        snapshot = snapshots.latest()
        model_view = snapshot.as_model()
        inference_params = ingest._inference.parameters
        for task_id in snapshot.store.task_ids:
            assert model_view.tasks[task_id].label_probs == pytest.approx(
                inference_params.tasks[task_id].label_probs
            )


class TestStatDecay:
    def _run(self, small_dataset, worker_pool, distance_model, stat_decay):
        inference = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        ingestor = AnswerIngestor(
            inference,
            SnapshotStore(),
            config=IngestConfig(
                max_batch_answers=8,
                max_batch_delay=10.0,
                full_refresh_interval=30,
                stat_decay=stat_decay,
            ),
        )
        for event in make_events(small_dataset, worker_pool, distance_model, 72):
            ingestor.submit(event)
        ingestor.flush()
        return ingestor._updater.live_store

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            IngestConfig(stat_decay=0.0)
        with pytest.raises(ValueError):
            IngestConfig(stat_decay=1.5)

    def test_near_one_decay_matches_exact_path(
        self, small_dataset, worker_pool, distance_model
    ):
        # ``stat_decay < 1`` routes every update through the aging machinery
        # (per-row arrival epochs, decay**age evidence weights).  With the
        # decay infinitesimally below 1 those weights are all ~1, so the
        # decayed path must reproduce the exact historical path to <= 1e-9 —
        # the acceptance bound on the decay subsystem itself.
        exact = self._run(small_dataset, worker_pool, distance_model, 1.0)
        decayed = self._run(
            small_dataset, worker_pool, distance_model, 1.0 - 1e-12
        )
        assert exact.max_difference(decayed) <= 1e-9

    def test_aggressive_decay_actually_forgets(
        self, small_dataset, worker_pool, distance_model
    ):
        exact = self._run(small_dataset, worker_pool, distance_model, 1.0)
        decayed = self._run(small_dataset, worker_pool, distance_model, 0.5)
        assert exact.max_difference(decayed) > 1e-6
