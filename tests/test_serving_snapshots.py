"""Tests for repro.serving.snapshots (versioned snapshot store + persistence)."""

import numpy as np
import pytest

from repro.core.inference import LocationAwareInference
from repro.core.params import ArrayParameterStore
from repro.serving.snapshots import ParameterSnapshot, SnapshotStore, load_snapshot


@pytest.fixture()
def fitted_store(small_dataset, worker_pool, distance_model, collected_answers):
    """An ArrayParameterStore flattened from a real fit over the test corpus."""
    model = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )
    model.fit(collected_answers)
    worker_ids = collected_answers.worker_ids()
    task_ids = collected_answers.task_ids()
    registry = small_dataset.task_index
    num_labels = [registry[task_id].num_labels for task_id in task_ids]
    return model.parameters.to_array_store(worker_ids, task_ids, num_labels)


def assert_stores_equal(a: ArrayParameterStore, b: ArrayParameterStore) -> None:
    assert a.worker_ids == b.worker_ids
    assert a.task_ids == b.task_ids
    assert a.alpha == b.alpha
    assert a.function_set.lambdas == b.function_set.lambdas
    assert np.array_equal(a.label_offsets, b.label_offsets)
    assert np.array_equal(a.p_qualified, b.p_qualified)
    assert np.array_equal(a.distance_weights, b.distance_weights)
    assert np.array_equal(a.influence_weights, b.influence_weights)
    assert np.array_equal(a.label_probs, b.label_probs)


class TestNpzRoundTrip:
    def test_store_round_trip_is_bit_exact(self, fitted_store, tmp_path):
        path = fitted_store.save_npz(tmp_path / "params.npz")
        restored = ArrayParameterStore.load_npz(path)
        assert_stores_equal(fitted_store, restored)

    def test_snapshot_round_trip_keeps_metadata(self, fitted_store, tmp_path):
        store = SnapshotStore()
        snapshot = store.publish(fitted_store, published_at=12.5, source="full_refresh")
        path = snapshot.save(tmp_path / "snap.npz")
        restored = load_snapshot(path)
        assert restored.version == snapshot.version
        assert restored.published_at == 12.5
        assert restored.source == "restore"
        assert_stores_equal(snapshot.store, restored.store)

    def test_restored_arrays_are_frozen(self, fitted_store, tmp_path):
        snapshot = SnapshotStore().publish(fitted_store)
        restored = load_snapshot(snapshot.save(tmp_path / "snap.npz"))
        with pytest.raises(ValueError):
            restored.store.p_qualified[0] = 0.0


class TestVersioning:
    def test_versions_are_monotonic(self, fitted_store):
        store = SnapshotStore(max_snapshots=10)
        versions = [store.publish(fitted_store).version for _ in range(6)]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)
        assert store.versions == versions

    def test_retention_is_bounded_and_keeps_newest(self, fitted_store):
        store = SnapshotStore(max_snapshots=3)
        for _ in range(7):
            store.publish(fitted_store)
        assert len(store) == 3
        assert store.versions == [4, 5, 6]
        assert store.latest().version == 6
        with pytest.raises(KeyError):
            store.get(0)
        assert store.get(5).version == 5

    def test_adopt_continues_monotonically(self, fitted_store, tmp_path):
        source = SnapshotStore()
        for _ in range(4):
            snapshot = source.publish(fitted_store)
        restored = load_snapshot(snapshot.save(tmp_path / "snap.npz"))

        fresh = SnapshotStore()
        fresh.adopt(restored)
        assert fresh.latest().version == 3
        assert fresh.publish(fitted_store).version == 4

    def test_adopt_rejects_stale_versions(self, fitted_store):
        store = SnapshotStore()
        store.publish(fitted_store)
        store.publish(fitted_store)
        stale = ParameterSnapshot(version=0, store=fitted_store.copy().freeze())
        with pytest.raises(ValueError):
            store.adopt(stale)

    def test_invalid_construction(self, fitted_store):
        with pytest.raises(ValueError):
            SnapshotStore(max_snapshots=0)
        with pytest.raises(ValueError):
            ParameterSnapshot(version=-1, store=fitted_store)


class TestCopyOnWrite:
    def test_publish_does_not_alias_the_live_store(self, fitted_store):
        store = SnapshotStore()
        snapshot = store.publish(fitted_store)
        before = snapshot.store.p_qualified.copy()
        fitted_store.p_qualified[:] = 0.123
        assert np.array_equal(snapshot.store.p_qualified, before)

    def test_publish_leaves_every_caller_array_writable(self, fitted_store):
        SnapshotStore().publish(fitted_store)
        # The copy-on-write contract: freezing the snapshot must not freeze
        # the caller's arrays — including the shared-looking label_offsets.
        fitted_store.label_offsets[0] = fitted_store.label_offsets[0]
        fitted_store.p_qualified[0] = fitted_store.p_qualified[0]

    def test_snapshot_arrays_are_read_only(self, fitted_store):
        snapshot = SnapshotStore().publish(fitted_store)
        with pytest.raises(ValueError):
            snapshot.store.label_probs[0] = 1.0
        with pytest.raises(ValueError):
            snapshot.store.distance_weights[0, 0] = 1.0

    def test_latest_is_none_before_first_publish(self):
        assert SnapshotStore().latest() is None

    def test_as_model_is_cached_and_consistent(self, fitted_store):
        snapshot = SnapshotStore().publish(fitted_store)
        model = snapshot.as_model()
        assert snapshot.as_model() is model
        worker_id = fitted_store.worker_ids[0]
        i = fitted_store.worker_ids.index(worker_id)
        assert model.worker(worker_id).p_qualified == pytest.approx(
            float(fitted_store.p_qualified[i])
        )


class TestWarmStartFromSnapshot:
    def test_restored_snapshot_warm_start_matches_live(
        self, small_dataset, worker_pool, distance_model, collected_answers,
        fitted_store, tmp_path,
    ):
        """Warm-starting EM from a restored snapshot equals the live store."""
        restored = load_snapshot(
            SnapshotStore().publish(fitted_store).save(tmp_path / "snap.npz")
        )

        def warm_fit(initial):
            model = LocationAwareInference(
                small_dataset.tasks, worker_pool.workers, distance_model
            )
            return model.fit(collected_answers, initial=initial).parameters

        live_params = warm_fit(fitted_store)
        restored_params = warm_fit(restored.store)
        assert live_params.max_difference(restored_params) <= 1e-9

    def test_warm_start_adopts_snapshot_without_fitting(
        self, small_dataset, worker_pool, distance_model, fitted_store
    ):
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model
        )
        assert not model.is_fitted
        model.warm_start(fitted_store)
        assert model.is_fitted
        task_id = fitted_store.task_ids[0]
        j = fitted_store.task_ids.index(task_id)
        expected = fitted_store.label_probs[fitted_store.task_label_slice(j)]
        assert model.label_probabilities(task_id) == pytest.approx(expected)


class TestIntegrity:
    def test_corrupt_snapshot_file_raises_typed_error(self, fitted_store, tmp_path):
        from repro.serving import ServingStateError, SnapshotIntegrityError
        from repro.serving.faults import corrupt_file

        path = SnapshotStore().publish(fitted_store).save(tmp_path / "snap.npz")
        # Smash the archive header: a flipped data byte deep inside a float
        # array can go unnoticed here (that is what the checkpoint manager's
        # CRC sidecars exist for); plain snapshot loads promise to catch
        # *structural* corruption.
        corrupt_file(path, offset=0, flips=8)
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            load_snapshot(path)
        assert "snap.npz" in str(excinfo.value)
        assert isinstance(excinfo.value, ServingStateError)

    def test_truncated_snapshot_file_raises(self, fitted_store, tmp_path):
        from repro.serving import SnapshotIntegrityError

        path = SnapshotStore().publish(fitted_store).save(tmp_path / "snap.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_missing_metadata_is_integrity_failure(self, fitted_store, tmp_path):
        from repro.serving import SnapshotIntegrityError

        # A bare parameter archive is readable but is not a snapshot: the
        # version/published_at metadata is missing.
        path = fitted_store.save_npz(tmp_path / "params.npz")
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_round_trip_still_works_after_corruption_check(
        self, fitted_store, tmp_path
    ):
        path = SnapshotStore().publish(fitted_store).save(tmp_path / "snap.npz")
        assert_stores_equal(load_snapshot(path).store, fitted_store)


class TestDeltaChainValidation:
    def _bad_delta(self, fitted_store, worker_row):
        import numpy as np

        from repro.core.params import StoreDelta

        return StoreDelta(
            worker_rows=np.array([worker_row], dtype=np.int64),
            p_qualified=np.array([0.5]),
            distance_weights=np.asarray(fitted_store.distance_weights[:1]).copy(),
            task_rows=np.array([], dtype=np.int64),
            influence_weights=np.empty(
                (0,) + np.asarray(fitted_store.influence_weights).shape[1:]
            ),
            label_slots=np.array([], dtype=np.int64),
            label_probs=np.array([]),
            num_workers=fitted_store.num_workers,
            num_tasks=fitted_store.num_tasks,
        )

    def test_out_of_bounds_delta_raises_on_materialization(self, fitted_store):
        from repro.serving import SnapshotIntegrityError

        store = SnapshotStore()
        store.publish(fitted_store)
        # The delta stamps the right universe (so the publish is accepted)
        # but carries a row index outside the base store.
        snapshot = store.publish_delta(
            self._bad_delta(fitted_store, fitted_store.num_workers + 3)
        )
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            snapshot.store
        assert "does not fit" in str(excinfo.value)

    def test_valid_delta_still_materializes(self, fitted_store):
        store = SnapshotStore()
        base = store.publish(fitted_store)
        snapshot = store.publish_delta(self._bad_delta(fitted_store, 0))
        materialized = snapshot.store
        assert materialized.p_qualified[0] == 0.5
        # The base snapshot is untouched (copy-on-write).
        assert base.store.p_qualified[0] == fitted_store.p_qualified[0]
