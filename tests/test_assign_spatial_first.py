"""Tests for repro.assign.spatial_first."""

import pytest

from repro.assign.spatial_first import SpatialFirstAssigner
from repro.data.models import Answer, AnswerSet


@pytest.fixture()
def assigner(small_dataset, worker_pool, distance_model):
    return SpatialFirstAssigner(small_dataset.tasks, worker_pool.workers, distance_model)


class TestSpatialFirstAssigner:
    def test_assigns_closest_tasks(self, assigner, small_dataset, worker_pool, distance_model):
        worker = worker_pool.workers[0]
        assignment = assigner.assign([worker.worker_id], 3, AnswerSet())
        chosen = assignment[worker.worker_id]
        assert len(chosen) == 3

        distances = {
            task.task_id: distance_model.worker_task_distance(worker.locations, task.location)
            for task in small_dataset.tasks
        }
        chosen_max = max(distances[task_id] for task_id in chosen)
        not_chosen_min = min(
            distances[task_id] for task_id in distances if task_id not in chosen
        )
        assert chosen_max <= not_chosen_min + 1e-12

    def test_sorted_by_distance(self, assigner, worker_pool, distance_model, small_dataset):
        worker = worker_pool.workers[1]
        assignment = assigner.assign([worker.worker_id], 4, AnswerSet())
        chosen = assignment[worker.worker_id]
        distances = [
            distance_model.worker_task_distance(
                worker.locations, small_dataset.task_by_id(task_id).location
            )
            for task_id in chosen
        ]
        assert distances == sorted(distances)

    def test_skips_answered_tasks(self, assigner, small_dataset, worker_pool):
        worker_id = worker_pool.worker_ids[0]
        first = assigner.assign([worker_id], 1, AnswerSet())[worker_id][0]
        answers = AnswerSet(
            [Answer(worker_id, first, tuple([1] * small_dataset.task_by_id(first).num_labels))]
        )
        second = assigner.assign([worker_id], 1, answers)[worker_id][0]
        assert second != first

    def test_h_larger_than_tasks(self, assigner, worker_pool, small_dataset):
        worker_id = worker_pool.worker_ids[0]
        assignment = assigner.assign([worker_id], len(small_dataset) + 5, AnswerSet())
        assert len(assignment[worker_id]) == len(small_dataset)

    def test_multiple_workers_each_served(self, assigner, worker_pool):
        workers = worker_pool.worker_ids[:3]
        assignment = assigner.assign(workers, 2, AnswerSet())
        assert set(assignment) == set(workers)
        assert all(len(tasks) == 2 for tasks in assignment.values())

    def test_deterministic(self, assigner, worker_pool):
        workers = worker_pool.worker_ids[:3]
        assert assigner.assign(workers, 2, AnswerSet()) == assigner.assign(
            workers, 2, AnswerSet()
        )

    def test_validation(self, assigner, worker_pool):
        with pytest.raises(ValueError):
            assigner.assign(worker_pool.worker_ids[:1], -1, AnswerSet())
        with pytest.raises(KeyError):
            assigner.assign(["ghost"], 1, AnswerSet())
