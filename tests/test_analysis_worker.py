"""Tests for repro.analysis.worker_analysis (Figures 6 and 7)."""

import numpy as np
import pytest

from repro.analysis.worker_analysis import (
    distance_accuracy_curves,
    worker_quality_histogram,
)


class TestWorkerQualityHistogram:
    def test_percentages_sum_to_hundred(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        histogram = worker_quality_histogram(
            collected_answers,
            small_dataset,
            worker_pool.workers,
            distance_model,
            max_distance=1.0,
        )
        assert histogram.percentages.sum() == pytest.approx(100.0)
        assert len(histogram.edges) == 6

    def test_restricting_distance_reduces_workers(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        wide = worker_quality_histogram(
            collected_answers, small_dataset, worker_pool.workers, distance_model, 1.0
        )
        narrow = worker_quality_histogram(
            collected_answers, small_dataset, worker_pool.workers, distance_model, 0.05
        )
        assert len(narrow.worker_accuracies) <= len(wide.worker_accuracies)

    def test_accuracies_in_unit_interval(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        histogram = worker_quality_histogram(
            collected_answers, small_dataset, worker_pool.workers, distance_model, 1.0
        )
        assert all(0.0 <= value <= 1.0 for value in histogram.worker_accuracies.values())

    def test_empty_answers(self, small_dataset, worker_pool, distance_model):
        from repro.data.models import AnswerSet

        histogram = worker_quality_histogram(
            AnswerSet(), small_dataset, worker_pool.workers, distance_model, 1.0
        )
        assert histogram.worker_accuracies == {}
        assert np.allclose(histogram.percentages, 0.0)

    def test_custom_bin_count(self, collected_answers, small_dataset, worker_pool, distance_model):
        histogram = worker_quality_histogram(
            collected_answers,
            small_dataset,
            worker_pool.workers,
            distance_model,
            max_distance=1.0,
            num_bins=10,
        )
        assert len(histogram.percentages) == 10


class TestDistanceAccuracyCurves:
    def test_top_k_most_active_workers(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        curves = distance_accuracy_curves(
            collected_answers, small_dataset, worker_pool.workers, distance_model, top_k=3
        )
        assert len(curves) <= 3
        counts = [curve.answer_count for curve in curves]
        assert counts == sorted(counts, reverse=True)

    def test_curve_values_valid(
        self, collected_answers, small_dataset, worker_pool, distance_model
    ):
        curves = distance_accuracy_curves(
            collected_answers, small_dataset, worker_pool.workers, distance_model, top_k=5
        )
        for curve in curves:
            assert len(curve.accuracies) == 5
            for value in curve.accuracies:
                assert value is None or 0.0 <= value <= 1.0

    def test_empty_answers(self, small_dataset, worker_pool, distance_model):
        from repro.data.models import AnswerSet

        assert (
            distance_accuracy_curves(
                AnswerSet(), small_dataset, worker_pool.workers, distance_model
            )
            == []
        )
