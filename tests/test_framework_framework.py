"""Tests for repro.framework.framework (the alternating loop)."""

import pytest

from repro.assign.random_assigner import RandomAssigner
from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.framework.config import FrameworkConfig
from repro.framework.framework import PoiLabellingFramework


def make_framework(platform, small_dataset, worker_pool, distance_model, assigner=None, **config_kwargs):
    defaults = dict(
        budget=60,
        tasks_per_worker=2,
        workers_per_round=3,
        evaluation_checkpoints=(20, 40, 60),
        full_refresh_interval=30,
        inference=InferenceConfig(max_iterations=25),
    )
    defaults.update(config_kwargs)
    config = FrameworkConfig(**defaults)
    inference = LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model, config=config.inference
    )
    if assigner is None:
        assigner = AccOptAssigner(small_dataset.tasks, worker_pool.workers, distance_model)
    return PoiLabellingFramework(platform, inference, assigner, config=config)


class TestFrameworkRun:
    def test_runs_until_budget_exhausted(self, platform, small_dataset, worker_pool, distance_model):
        # The platform fixture has a budget of 200 but the framework config caps at 60.
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run()
        assert result.assignments_spent <= platform.budget.total
        assert result.rounds > 0
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.snapshots

    def test_snapshots_at_checkpoints(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run()
        spent_values = [snapshot.assignments_spent for snapshot in result.snapshots]
        assert spent_values == sorted(spent_values)
        # At least one snapshot at or after every checkpoint that was reachable.
        assert any(s >= 20 for s in spent_values)

    def test_accuracy_at_lookup(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run()
        last = result.snapshots[-1]
        assert result.accuracy_at(last.assignments_spent) == pytest.approx(last.accuracy)
        with pytest.raises(ValueError):
            result.accuracy_at(0)

    def test_accuracy_series_pairs(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run()
        series = result.accuracy_series
        assert len(series) == len(result.snapshots)
        assert all(isinstance(spent, int) and 0.0 <= acc <= 1.0 for spent, acc in series)

    def test_max_rounds_cap(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run(max_rounds=2)
        assert result.rounds <= 2

    def test_no_duplicate_worker_task_pairs(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        framework.run()
        pairs = [(a.worker_id, a.task_id) for a in platform.assignments]
        assert len(pairs) == len(set(pairs))

    def test_budget_never_exceeded(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        framework.run()
        assert platform.budget.spent <= platform.budget.total

    def test_works_with_random_assigner(self, platform, small_dataset, worker_pool, distance_model):
        assigner = RandomAssigner(small_dataset.tasks, worker_pool.workers, seed=5)
        framework = make_framework(
            platform, small_dataset, worker_pool, distance_model, assigner=assigner
        )
        result = framework.run()
        assert result.final_accuracy > 0.5

    def test_incremental_updates_disabled_still_works(
        self, platform, small_dataset, worker_pool, distance_model
    ):
        framework = make_framework(
            platform,
            small_dataset,
            worker_pool,
            distance_model,
            use_incremental_updates=False,
        )
        result = framework.run(max_rounds=3)
        assert result.rounds == 3
        assert framework.inference.is_fitted

    def test_final_accuracy_reasonable(self, platform, small_dataset, worker_pool, distance_model):
        framework = make_framework(platform, small_dataset, worker_pool, distance_model)
        result = framework.run()
        # With a mostly-reliable simulated crowd the final accuracy must beat chance.
        assert result.final_accuracy > 0.55
        assert 0.0 <= result.final_average_acc <= 1.0
