"""Tests for repro.crowd.worker_pool."""

import pytest

from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec, WorkerProfile
from repro.data.models import Worker
from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint


def make_profile(worker_id="w1", quality=0.9, lam=10.0):
    worker = Worker(worker_id, (GeoPoint(0, 0),))
    return WorkerProfile(worker=worker, inherent_quality=quality, distance_lambda=lam)


class TestWorkerProfile:
    def test_valid(self):
        profile = make_profile()
        assert profile.worker_id == "w1"
        assert profile.locations == (GeoPoint(0, 0),)

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            make_profile(quality=1.5)

    def test_negative_lambda(self):
        with pytest.raises(ValueError):
            make_profile(lam=-1.0)


class TestWorkerPoolSpec:
    def test_defaults_valid(self):
        WorkerPoolSpec()

    def test_invalid_num_workers(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(num_workers=0)

    def test_invalid_reliable_fraction(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(reliable_fraction=1.2)

    def test_mismatched_lambda_weights(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(lambda_choices=(1.0, 2.0), lambda_weights=(1.0,))

    def test_lambda_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(lambda_choices=(1.0, 2.0), lambda_weights=(0.6, 0.6))

    def test_invalid_locations_per_worker(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(locations_per_worker=(0, 2))
        with pytest.raises(ValueError):
            WorkerPoolSpec(locations_per_worker=(3, 2))


class TestWorkerPool:
    def test_construction_and_lookup(self):
        pool = WorkerPool([make_profile("w1"), make_profile("w2")])
        assert len(pool) == 2
        assert "w1" in pool
        assert pool.profile("w2").worker_id == "w2"
        assert pool.worker("w1").worker_id == "w1"
        assert pool.worker_ids == ["w1", "w2"]
        assert len(pool.workers) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool([make_profile("w1"), make_profile("w1")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_iteration_order(self):
        pool = WorkerPool([make_profile("b"), make_profile("a")])
        assert [p.worker_id for p in pool] == ["b", "a"]


class TestWorkerPoolGenerate:
    BOUNDS = BoundingBox(0.0, 0.0, 10.0, 10.0)

    def test_generate_count_and_bounds(self):
        spec = WorkerPoolSpec(num_workers=20)
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=1)
        assert len(pool) == 20
        for profile in pool:
            assert all(self.BOUNDS.contains(loc) for loc in profile.locations)

    def test_generate_deterministic(self):
        spec = WorkerPoolSpec(num_workers=10)
        a = WorkerPool.generate(self.BOUNDS, spec=spec, seed=5)
        b = WorkerPool.generate(self.BOUNDS, spec=spec, seed=5)
        assert [p.inherent_quality for p in a] == [p.inherent_quality for p in b]
        assert [p.distance_lambda for p in a] == [p.distance_lambda for p in b]

    def test_lambda_values_from_choices(self):
        spec = WorkerPoolSpec(num_workers=30)
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=2)
        assert all(p.distance_lambda in spec.lambda_choices for p in pool)

    def test_quality_ranges_respected(self):
        spec = WorkerPoolSpec(
            num_workers=50,
            reliable_fraction=1.0,
            reliable_quality_range=(0.9, 0.95),
        )
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=3)
        assert all(0.9 <= p.inherent_quality <= 0.95 for p in pool)

    def test_locations_per_worker_range(self):
        spec = WorkerPoolSpec(num_workers=25, locations_per_worker=(2, 3))
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=4)
        assert all(2 <= len(p.locations) <= 3 for p in pool)


class TestAdversaryInjection:
    BOUNDS = BoundingBox(0.0, 0.0, 10.0, 10.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(adversary_fraction=1.2)
        with pytest.raises(ValueError):
            WorkerPoolSpec(adversary_weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            WorkerPoolSpec(adversary_weights=(-0.5, 0.75, 0.75))
        with pytest.raises(ValueError):
            WorkerPoolSpec(collusion_ring_size=1)

    def test_fraction_controls_adversary_count(self):
        spec = WorkerPoolSpec(num_workers=20, adversary_fraction=0.25)
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=3)
        assert len(pool.adversary_ids) == 5
        assert all(pool.profile(w).is_adversary for w in pool.adversary_ids)

    def test_weights_select_archetypes(self):
        spec = WorkerPoolSpec(
            num_workers=20,
            adversary_fraction=0.5,
            adversary_weights=(1.0, 0.0, 0.0),
        )
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=3)
        archetypes = {pool.profile(w).archetype for w in pool.adversary_ids}
        assert archetypes == {"always-wrong"}

    def test_colluders_are_grouped_into_rings(self):
        spec = WorkerPoolSpec(
            num_workers=12,
            adversary_fraction=0.5,
            adversary_weights=(0.0, 0.0, 1.0),
            collusion_ring_size=3,
        )
        pool = WorkerPool.generate(self.BOUNDS, spec=spec, seed=3)
        rings = [pool.profile(w).collusion_ring for w in pool.adversary_ids]
        assert len(rings) == 6
        assert all(ring is not None for ring in rings)
        sizes = [rings.count(ring) for ring in set(rings)]
        assert max(sizes) == 3

    def test_honest_pool_is_unperturbed_by_injection(self):
        # The adversary slice replaces profiles *after* the honest draws, so
        # the honest remainder is bit-identical with injection on or off.
        clean = WorkerPool.generate(
            self.BOUNDS, spec=WorkerPoolSpec(num_workers=20), seed=9
        )
        spiked = WorkerPool.generate(
            self.BOUNDS,
            spec=WorkerPoolSpec(num_workers=20, adversary_fraction=0.25),
            seed=9,
        )
        adversaries = set(spiked.adversary_ids)
        for profile in clean:
            if profile.worker_id in adversaries:
                continue
            twin = spiked.profile(profile.worker_id)
            assert twin.inherent_quality == profile.inherent_quality
            assert twin.distance_lambda == profile.distance_lambda
            assert twin.locations == profile.locations
            assert twin.archetype == "honest"
