"""Tests for repro.utils.binning."""

import numpy as np
import pytest

from repro.utils.binning import bin_edges, bin_index, histogram_percentages, mean_by_bin


class TestBinEdges:
    def test_count_and_range(self):
        edges = bin_edges(0.0, 1.0, 5)
        assert len(edges) == 6
        assert edges[0] == 0.0
        assert edges[-1] == 1.0

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            bin_edges(0.0, 1.0, 0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bin_edges(1.0, 0.0, 5)


class TestBinIndex:
    def test_interior_value(self):
        edges = bin_edges(0.0, 1.0, 5)
        assert bin_index(0.3, edges) == 1

    def test_left_edge_inclusive(self):
        edges = bin_edges(0.0, 1.0, 5)
        assert bin_index(0.0, edges) == 0
        assert bin_index(0.2, edges) == 1

    def test_max_value_falls_in_last_bin(self):
        edges = bin_edges(0.0, 1.0, 5)
        assert bin_index(1.0, edges) == 4

    def test_out_of_range_raises(self):
        edges = bin_edges(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            bin_index(1.5, edges)
        with pytest.raises(ValueError):
            bin_index(-0.1, edges)

    def test_too_few_edges_raises(self):
        with pytest.raises(ValueError):
            bin_index(0.5, [0.0])


class TestHistogramPercentages:
    def test_sums_to_hundred(self):
        edges = bin_edges(0.0, 1.0, 5)
        out = histogram_percentages([0.1, 0.5, 0.9, 0.95], edges)
        assert out.sum() == pytest.approx(100.0)

    def test_empty_input(self):
        edges = bin_edges(0.0, 1.0, 4)
        assert np.allclose(histogram_percentages([], edges), np.zeros(4))

    def test_known_distribution(self):
        edges = bin_edges(0.0, 1.0, 2)
        out = histogram_percentages([0.1, 0.2, 0.8, 0.9], edges)
        assert np.allclose(out, [50.0, 50.0])


class TestMeanByBin:
    def test_basic_grouping(self):
        edges = bin_edges(0.0, 1.0, 2)
        means = mean_by_bin([0.1, 0.2, 0.9], [1.0, 3.0, 10.0], edges)
        assert means[0] == pytest.approx(2.0)
        assert means[1] == pytest.approx(10.0)

    def test_empty_bin_is_none(self):
        edges = bin_edges(0.0, 1.0, 2)
        means = mean_by_bin([0.1], [5.0], edges)
        assert means[1] is None

    def test_mismatched_lengths_raise(self):
        edges = bin_edges(0.0, 1.0, 2)
        with pytest.raises(ValueError):
            mean_by_bin([0.1, 0.2], [1.0], edges)
