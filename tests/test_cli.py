"""Tests for the repro-poi command-line interface."""

import json

import pytest

from repro.cli import main
from repro.data.io import load_answers, load_dataset


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "dataset.json"
    code = main(
        [
            "generate",
            "--dataset", "synthetic",
            "--num-tasks", "10",
            "--labels-per-task", "5",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generate_beijing(self, tmp_path, capsys):
        out = tmp_path / "beijing.json"
        assert main(["generate", "--dataset", "beijing", "--out", str(out)]) == 0
        dataset = load_dataset(out)
        assert len(dataset) == 200
        assert "wrote Beijing" in capsys.readouterr().out

    def test_generate_synthetic_size(self, dataset_file):
        dataset = load_dataset(dataset_file)
        assert len(dataset) == 10
        assert dataset.tasks[0].num_labels == 5

    def test_missing_out_fails(self):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "beijing"])

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["does-not-exist"])


class TestCollectAndInfer:
    def test_collect_then_infer(self, dataset_file, tmp_path, capsys):
        answers_path = tmp_path / "answers.json"
        code = main(
            [
                "collect",
                "--dataset-file", str(dataset_file),
                "--answers-per-task", "3",
                "--num-workers", "10",
                "--seed", "5",
                "--out", str(answers_path),
            ]
        )
        assert code == 0
        answers = load_answers(answers_path)
        assert len(answers) == 30

        code = main(
            [
                "infer",
                "--dataset-file", str(dataset_file),
                "--answers-file", str(answers_path),
                "--methods", "MV", "IM",
                "--num-workers", "10",
                "--seed", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "MV: labelling accuracy" in output
        assert "IM: labelling accuracy" in output

    def test_infer_with_mismatched_pool_errors(self, dataset_file, tmp_path, capsys):
        answers_path = tmp_path / "answers.json"
        main(
            [
                "collect",
                "--dataset-file", str(dataset_file),
                "--answers-per-task", "2",
                "--num-workers", "10",
                "--seed", "5",
                "--out", str(answers_path),
            ]
        )
        # Requesting IM with a smaller regenerated pool must fail loudly rather
        # than silently treating unknown workers as new ones.
        code = main(
            [
                "infer",
                "--dataset-file", str(dataset_file),
                "--answers-file", str(answers_path),
                "--methods", "IM",
                "--num-workers", "3",
                "--seed", "5",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaign:
    def test_campaign_runs_and_reports(self, dataset_file, capsys):
        code = main(
            [
                "campaign",
                "--dataset-file", str(dataset_file),
                "--budget", "30",
                "--num-workers", "8",
                "--workers-per-round", "3",
                "--assigner", "uncertainty",
                "--seed", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "campaign finished" in output
        assert "final accuracy (uncertainty):" in output

    def test_campaign_with_accopt(self, dataset_file, capsys):
        code = main(
            [
                "campaign",
                "--dataset-file", str(dataset_file),
                "--budget", "20",
                "--num-workers", "8",
                "--workers-per-round", "2",
                "--assigner", "accopt",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert "final accuracy (accopt):" in capsys.readouterr().out

    def test_campaign_with_sparse_engine(self, dataset_file, capsys):
        code = main(
            [
                "campaign",
                "--dataset-file", str(dataset_file),
                "--budget", "20",
                "--num-workers", "8",
                "--workers-per-round", "2",
                "--assigner", "accopt",
                "--assigner-engine", "sparse",
                "--candidate-radius", "100.0",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert "final accuracy (accopt):" in capsys.readouterr().out


class TestServeSim:
    def test_serve_sim_with_sparse_engine(self, capsys):
        code = main(
            [
                "serve-sim",
                "--num-tasks", "15",
                "--budget", "24",
                "--num-workers", "8",
                "--workers-per-round", "3",
                "--assigner", "accopt",
                "--assigner-engine", "sparse",
                "--candidate-radius", "100.0",
                "--seed", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "answers ingested: 24" in output
        assert "final labelling accuracy:" in output

    def test_serve_sim_replays_generated_workload(self, tmp_path, capsys):
        snapshot_path = tmp_path / "snapshot.npz"
        code = main(
            [
                "serve-sim",
                "--num-tasks", "15",
                "--budget", "40",
                "--num-workers", "8",
                "--workers-per-round", "3",
                "--batch-answers", "8",
                "--full-refresh-interval", "30",
                "--seed", "5",
                "--snapshot-out", str(snapshot_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "answers ingested: 40" in output
        assert "micro-batches" in output
        assert "assignment latency: p50" in output
        assert "final labelling accuracy:" in output
        assert snapshot_path.exists()

    def test_serve_sim_on_dataset_file(self, dataset_file, capsys):
        code = main(
            [
                "serve-sim",
                "--dataset-file", str(dataset_file),
                "--budget", "16",
                "--num-workers", "6",
                "--workers-per-round", "2",
                "--assigner", "uncertainty",
                "--seed", "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "snapshots:" in output
        assert "answers ingested: 16" in output


class TestServeSimScenario:
    def test_scenario_runs_end_to_end(self, capsys):
        code = main(
            [
                "serve-sim",
                "--scenario", "spam",
                "--num-tasks", "12",
                "--num-workers", "10",
                "--budget", "40",
                "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario spam:" in output
        assert "answers ingested: 40" in output
        assert "trust:" in output
        assert "final labelling accuracy:" in output

    def test_scenario_rejects_dataset_file(self, dataset_file, capsys):
        code = main(
            [
                "serve-sim",
                "--scenario", "clean",
                "--dataset-file", str(dataset_file),
            ]
        )
        assert code == 2
        assert "drop --dataset-file" in capsys.readouterr().err

    def test_unknown_scenario_fails(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--scenario", "mystery"])
