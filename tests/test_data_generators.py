"""Tests for repro.data.generators."""

import pytest

from repro.data.generators import (
    DatasetSpec,
    generate_beijing_dataset,
    generate_china_dataset,
    generate_dataset,
    generate_scalability_dataset,
)
from repro.spatial.bbox import BEIJING_BBOX, CHINA_BBOX


class TestDatasetSpecValidation:
    def test_defaults_valid(self):
        DatasetSpec(name="x")

    def test_invalid_num_tasks(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_tasks=0)

    def test_invalid_labels_per_task(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", labels_per_task=0)

    def test_invalid_total_correct(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_tasks=10, labels_per_task=5, total_correct_labels=5)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", num_tasks=10, labels_per_task=5, total_correct_labels=51)

    def test_invalid_clustered_fraction(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", clustered_fraction=1.5)


class TestGenerateDataset:
    def test_deterministic_for_seed(self):
        spec = DatasetSpec(name="small", num_tasks=10, labels_per_task=6)
        a = generate_dataset(spec, seed=5)
        b = generate_dataset(spec, seed=5)
        assert [t.labels for t in a.tasks] == [t.labels for t in b.tasks]
        assert [t.truth for t in a.tasks] == [t.truth for t in b.tasks]
        assert [t.location for t in a.tasks] == [t.location for t in b.tasks]

    def test_different_seeds_differ(self):
        spec = DatasetSpec(name="small", num_tasks=10, labels_per_task=6)
        a = generate_dataset(spec, seed=5)
        b = generate_dataset(spec, seed=6)
        assert [t.labels for t in a.tasks] != [t.labels for t in b.tasks]

    def test_every_task_has_at_least_one_correct_label(self):
        spec = DatasetSpec(name="small", num_tasks=30, labels_per_task=8)
        dataset = generate_dataset(spec, seed=2)
        assert all(sum(task.truth) >= 1 for task in dataset.tasks)

    def test_total_correct_labels_respected(self):
        spec = DatasetSpec(
            name="exact", num_tasks=20, labels_per_task=10, total_correct_labels=95
        )
        dataset = generate_dataset(spec, seed=9)
        assert dataset.total_correct_labels == 95

    def test_locations_within_bbox(self):
        spec = DatasetSpec(name="bj", num_tasks=25, bbox=BEIJING_BBOX)
        dataset = generate_dataset(spec, seed=3)
        assert all(BEIJING_BBOX.contains(task.location) for task in dataset.tasks)

    def test_unknown_category_raises(self):
        spec = DatasetSpec(name="bad", num_tasks=5, categories=("casino",))
        with pytest.raises(ValueError):
            generate_dataset(spec, seed=1)

    def test_labels_unique_per_task(self):
        spec = DatasetSpec(name="small", num_tasks=20, labels_per_task=10)
        dataset = generate_dataset(spec, seed=4)
        for task in dataset.tasks:
            assert len(set(task.labels)) == task.num_labels

    def test_review_counts_positive(self):
        spec = DatasetSpec(name="small", num_tasks=20)
        dataset = generate_dataset(spec, seed=4)
        assert all(task.poi.review_count >= 1 for task in dataset.tasks)

    def test_max_distance_positive(self):
        spec = DatasetSpec(name="small", num_tasks=10)
        dataset = generate_dataset(spec, seed=4)
        assert dataset.max_distance > 0


class TestNamedDatasets:
    def test_beijing_matches_paper_marginals(self):
        dataset = generate_beijing_dataset(seed=7)
        assert len(dataset) == 200
        assert dataset.total_labels == 2000
        assert dataset.total_correct_labels == 927
        assert dataset.total_incorrect_labels == 1073
        assert all(BEIJING_BBOX.contains(task.location) for task in dataset.tasks)

    def test_china_matches_paper_marginals(self):
        dataset = generate_china_dataset(seed=11)
        assert len(dataset) == 200
        assert dataset.total_correct_labels == 864
        assert dataset.total_incorrect_labels == 1136
        assert all(CHINA_BBOX.contains(task.location) for task in dataset.tasks)

    def test_scalability_dataset_size(self):
        dataset = generate_scalability_dataset(num_tasks=150, labels_per_task=5, seed=1)
        assert len(dataset) == 150
        assert dataset.tasks[0].num_labels == 5
