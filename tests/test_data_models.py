"""Tests for repro.data.models."""

import pytest

from repro.data.models import POI, Answer, AnswerSet, Dataset, Task, Worker
from repro.spatial.geometry import GeoPoint


def make_poi(poi_id="p1", reviews=100):
    return POI(poi_id=poi_id, name="Test POI", location=GeoPoint(1.0, 2.0), review_count=reviews)


def make_task(task_id="t1", labels=("a", "b", "c"), truth=(1, 0, 1)):
    return Task(task_id=task_id, poi=make_poi(poi_id=f"poi-{task_id}"), labels=labels, truth=truth)


class TestPOI:
    def test_valid(self):
        poi = make_poi()
        assert poi.review_count == 100

    def test_empty_id_raises(self):
        with pytest.raises(ValueError):
            POI(poi_id="", name="x", location=GeoPoint(0, 0))

    def test_negative_reviews_raise(self):
        with pytest.raises(ValueError):
            make_poi(reviews=-1)


class TestTask:
    def test_properties(self):
        task = make_task()
        assert task.num_labels == 3
        assert task.location == GeoPoint(1.0, 2.0)
        assert task.correct_labels == ("a", "c")

    def test_mismatched_truth_raises(self):
        with pytest.raises(ValueError):
            make_task(labels=("a", "b"), truth=(1,))

    def test_invalid_truth_value_raises(self):
        with pytest.raises(ValueError):
            make_task(truth=(1, 2, 0))

    def test_empty_labels_raise(self):
        with pytest.raises(ValueError):
            make_task(labels=(), truth=())

    def test_duplicate_labels_raise(self):
        with pytest.raises(ValueError):
            make_task(labels=("a", "a", "b"), truth=(1, 0, 1))

    def test_empty_id_raises(self):
        with pytest.raises(ValueError):
            make_task(task_id="")


class TestWorker:
    def test_primary_location(self):
        worker = Worker("w1", (GeoPoint(0, 0), GeoPoint(1, 1)))
        assert worker.primary_location == GeoPoint(0, 0)

    def test_no_locations_raise(self):
        with pytest.raises(ValueError):
            Worker("w1", ())

    def test_empty_id_raises(self):
        with pytest.raises(ValueError):
            Worker("", (GeoPoint(0, 0),))


class TestAnswer:
    def test_accuracy_against(self):
        answer = Answer("w1", "t1", (1, 0, 1, 0))
        assert answer.accuracy_against((1, 0, 0, 0)) == pytest.approx(0.75)
        assert answer.accuracy_against((1, 0, 1, 0)) == 1.0

    def test_accuracy_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            Answer("w1", "t1", (1, 0)).accuracy_against((1, 0, 1))

    def test_invalid_responses_raise(self):
        with pytest.raises(ValueError):
            Answer("w1", "t1", (1, 2))

    def test_empty_responses_raise(self):
        with pytest.raises(ValueError):
            Answer("w1", "t1", ())


class TestAnswerSet:
    def test_add_and_indices(self):
        answers = AnswerSet()
        answers.add(Answer("w1", "t1", (1, 0)))
        answers.add(Answer("w2", "t1", (0, 0)))
        answers.add(Answer("w1", "t2", (1, 1)))
        assert len(answers) == 3
        assert answers.workers_of_task("t1") == {"w1", "w2"}
        assert answers.tasks_of_worker("w1") == {"t1", "t2"}
        assert answers.answer_count_of_task("t1") == 2
        assert ("w1", "t1") in answers

    def test_replacement_of_duplicate(self):
        answers = AnswerSet()
        answers.add(Answer("w1", "t1", (1, 0)))
        answers.add(Answer("w1", "t1", (0, 1)))
        assert len(answers) == 1
        assert answers.get("w1", "t1").responses == (0, 1)

    def test_answers_of_task_sorted_by_worker(self):
        answers = AnswerSet(
            [Answer("w2", "t1", (1,)), Answer("w1", "t1", (0,))]
        )
        assert [a.worker_id for a in answers.answers_of_task("t1")] == ["w1", "w2"]

    def test_answers_of_worker_sorted_by_task(self):
        answers = AnswerSet(
            [Answer("w1", "t2", (1,)), Answer("w1", "t1", (0,))]
        )
        assert [a.task_id for a in answers.answers_of_worker("w1")] == ["t1", "t2"]

    def test_missing_lookups(self):
        answers = AnswerSet()
        assert answers.get("w", "t") is None
        assert answers.workers_of_task("t") == frozenset()
        assert answers.tasks_of_worker("w") == frozenset()

    def test_copy_is_independent(self):
        answers = AnswerSet([Answer("w1", "t1", (1,))])
        clone = answers.copy()
        clone.add(Answer("w2", "t1", (0,)))
        assert len(answers) == 1
        assert len(clone) == 2

    def test_total_label_answers(self):
        answers = AnswerSet([Answer("w1", "t1", (1, 0, 1)), Answer("w2", "t2", (0, 1))])
        assert answers.total_label_answers == 5

    def test_worker_and_task_ids(self):
        answers = AnswerSet([Answer("w2", "t9", (1,)), Answer("w1", "t3", (0,))])
        assert answers.worker_ids() == ["w1", "w2"]
        assert answers.task_ids() == ["t3", "t9"]


class TestDataset:
    def test_counts(self):
        tasks = [make_task("t1"), make_task("t2", truth=(0, 0, 1))]
        dataset = Dataset(name="d", tasks=tasks)
        assert len(dataset) == 2
        assert dataset.total_labels == 6
        assert dataset.total_correct_labels == 3
        assert dataset.total_incorrect_labels == 3

    def test_task_lookup(self):
        dataset = Dataset(name="d", tasks=[make_task("t1"), make_task("t2")])
        assert dataset.task_by_id("t2").task_id == "t2"
        with pytest.raises(KeyError):
            dataset.task_by_id("missing")
        assert set(dataset.task_index) == {"t1", "t2"}

    def test_duplicate_task_ids_raise(self):
        with pytest.raises(ValueError):
            Dataset(name="d", tasks=[make_task("t1"), make_task("t1")])

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            Dataset(name="d", tasks=[])

    def test_poi_locations(self):
        dataset = Dataset(name="d", tasks=[make_task("t1")])
        assert dataset.poi_locations == [GeoPoint(1.0, 2.0)]
