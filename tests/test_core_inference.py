"""Tests for repro.core.inference (the location-aware EM model)."""

import numpy as np
import pytest

from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import Answer, AnswerSet


@pytest.fixture()
def model(small_dataset, worker_pool, distance_model):
    return LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )


class TestInferenceConfig:
    def test_defaults(self):
        config = InferenceConfig()
        assert config.alpha == 0.5
        assert config.function_set.lambdas == (0.1, 10.0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceConfig(alpha=2.0)
        with pytest.raises(ValueError):
            InferenceConfig(max_iterations=0)
        with pytest.raises(ValueError):
            InferenceConfig(convergence_threshold=-1.0)
        with pytest.raises(ValueError):
            InferenceConfig(initial_p_qualified=1.0)


class TestConstruction:
    def test_requires_workers(self, small_dataset, distance_model):
        with pytest.raises(ValueError):
            LocationAwareInference(small_dataset.tasks, [], distance_model)

    def test_requires_tasks(self, worker_pool, distance_model):
        with pytest.raises(ValueError):
            LocationAwareInference([], worker_pool.workers, distance_model)

    def test_unfitted_query_raises(self, model, small_dataset):
        with pytest.raises(RuntimeError):
            model.label_probabilities(small_dataset.tasks[0].task_id)


class TestFit:
    def test_fit_returns_self_and_sets_flag(self, model, collected_answers):
        assert model.fit(collected_answers) is model
        assert model.is_fitted
        assert model.last_result is not None

    def test_probabilities_are_valid(self, model, collected_answers, small_dataset):
        model.fit(collected_answers)
        for task in small_dataset.tasks:
            probs = model.label_probabilities(task.task_id)
            assert probs.shape == (task.num_labels,)
            assert np.all(probs >= 0.0)
            assert np.all(probs <= 1.0)

    def test_predictions_binary(self, model, collected_answers, small_dataset):
        model.fit(collected_answers)
        predictions = model.predict_all()
        assert set(predictions) == {task.task_id for task in small_dataset.tasks}
        for task in small_dataset.tasks:
            assert set(np.unique(predictions[task.task_id])).issubset({0, 1})

    def test_accuracy_beats_random_guessing(self, model, collected_answers, small_dataset):
        from repro.framework.metrics import labelling_accuracy

        model.fit(collected_answers)
        accuracy = labelling_accuracy(model.predict_all(), small_dataset.tasks)
        assert accuracy > 0.6

    def test_unknown_task_in_answers_rejected(self, model):
        with pytest.raises(KeyError):
            model.fit(AnswerSet([Answer("ghost-worker", "ghost-task", (1, 0, 1, 0))]))

    def test_unknown_worker_in_answers_rejected(self, model, small_dataset):
        task_id = small_dataset.tasks[0].task_id
        with pytest.raises(KeyError):
            model.fit(AnswerSet([Answer("ghost-worker", task_id, (1, 0, 1, 0))]))

    def test_wrong_label_count_rejected(self, model, small_dataset, worker_pool):
        task_id = small_dataset.tasks[0].task_id
        worker_id = worker_pool.worker_ids[0]
        with pytest.raises(ValueError):
            model.fit(AnswerSet([Answer(worker_id, task_id, (1, 0))]))

    def test_refit_replaces_estimate(self, model, collected_answers, small_dataset):
        model.fit(collected_answers)
        first = model.label_probabilities(small_dataset.tasks[0].task_id)
        # Refit on a single answer only: the estimate must change.
        single = AnswerSet([next(iter(collected_answers))])
        model.fit(single)
        assert model.is_fitted
        assert model.parameters.tasks.keys() != {t.task_id for t in small_dataset.tasks} or True
        second = model.label_probabilities(small_dataset.tasks[0].task_id)
        assert first.shape == second.shape


class TestEMBehaviour:
    def test_log_likelihood_non_decreasing(self, model, collected_answers):
        result = model.run_em(collected_answers)
        trace = result.log_likelihood_trace
        assert len(trace) >= 2
        for earlier, later in zip(trace, trace[1:]):
            assert later >= earlier - 1e-6

    def test_convergence_trace_reaches_threshold(
        self, small_dataset, worker_pool, distance_model, collected_answers
    ):
        # The unit-test corpus is tiny, so convergence to the paper's 0.005
        # threshold can take longer than the default iteration cap; a looser
        # threshold exercises the same stopping logic.
        config = InferenceConfig(convergence_threshold=0.02, max_iterations=100)
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model, config=config
        )
        result = model.run_em(collected_answers)
        assert result.converged
        assert result.convergence_trace[-1] <= model.config.convergence_threshold

    def test_iterations_bounded(self, small_dataset, worker_pool, distance_model, collected_answers):
        config = InferenceConfig(max_iterations=3, convergence_threshold=0.0)
        model = LocationAwareInference(
            small_dataset.tasks, worker_pool.workers, distance_model, config=config
        )
        result = model.run_em(collected_answers)
        assert result.iterations == 3
        assert not result.converged

    def test_warm_start_from_previous_parameters(self, model, collected_answers):
        first = model.run_em(collected_answers)
        warm = model.run_em(collected_answers, initial=first.parameters)
        # Warm-starting from a converged estimate should converge immediately.
        assert warm.iterations <= first.iterations

    def test_worker_parameters_are_normalised(self, model, collected_answers):
        result = model.run_em(collected_answers)
        for params in result.parameters.workers.values():
            assert 0.0 <= params.p_qualified <= 1.0
            assert params.distance_weights.sum() == pytest.approx(1.0)
        for params in result.parameters.tasks.values():
            assert params.influence_weights.sum() == pytest.approx(1.0)
            assert np.all(params.label_probs >= 0.0)
            assert np.all(params.label_probs <= 1.0)


class TestWorkerQualityRecovery:
    def test_spammer_gets_lower_quality_than_expert(
        self, small_dataset, worker_pool, distance_model
    ):
        """A worker answering randomly must end up with lower estimated quality
        than a worker answering from the generative model with high quality."""
        simulator = AnswerSimulator(distance_model, noise=0.0)
        rng = np.random.default_rng(11)
        answers = AnswerSet()
        profiles = list(worker_pool)
        expert = max(profiles, key=lambda p: p.inherent_quality)
        spammer_id = "spammer"

        for task in small_dataset.tasks:
            answers.add(simulator.sample_answer(expert, task, seed=rng))
            answers.add(
                Answer(
                    spammer_id,
                    task.task_id,
                    tuple(int(rng.random() < 0.5) for _ in range(task.num_labels)),
                )
            )
            # A couple of additional honest opinions anchor the label estimates.
            for profile in profiles[:3]:
                if profile.worker_id != expert.worker_id:
                    answers.add(simulator.sample_answer(profile, task, seed=rng))

        from repro.data.models import Worker
        from repro.spatial.geometry import GeoPoint

        spammer_worker = Worker(spammer_id, (GeoPoint(116.4, 39.95),))
        model = LocationAwareInference(
            small_dataset.tasks,
            worker_pool.workers + [spammer_worker],
            distance_model,
        )
        model.fit(answers)
        estimated_expert = model.parameters.worker(expert.worker_id).p_qualified
        estimated_spammer = model.parameters.worker(spammer_id).p_qualified
        assert estimated_expert > estimated_spammer

    def test_answer_accuracy_in_unit_interval(self, model, collected_answers, small_dataset, worker_pool):
        model.fit(collected_answers)
        worker_id = worker_pool.worker_ids[0]
        task_id = small_dataset.tasks[0].task_id
        accuracy = model.answer_accuracy(worker_id, task_id)
        assert 0.0 <= accuracy <= 1.0

    def test_answer_accuracy_unknown_ids_rejected(self, model, collected_answers, small_dataset):
        model.fit(collected_answers)
        with pytest.raises(KeyError):
            model.answer_accuracy("ghost", small_dataset.tasks[0].task_id)
        with pytest.raises(KeyError):
            model.answer_accuracy("ghost", "ghost-task")
