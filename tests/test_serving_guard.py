"""Tests for repro.serving.guard (event validation and quarantine)."""

import json
from types import SimpleNamespace

import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import Answer
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    EventGuard,
    GuardConfig,
    IngestConfig,
    SnapshotStore,
)


@pytest.fixture()
def inference(small_dataset, worker_pool, distance_model):
    return LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )


def make_event(small_dataset, worker_pool, distance_model, index=0, time=0.0):
    simulator = AnswerSimulator(distance_model, noise=0.0)
    profile = next(iter(worker_pool))
    task = small_dataset.tasks[index % len(small_dataset.tasks)]
    return AnswerEvent(
        simulator.sample_answer(profile, task, seed=500 + index), time=time
    )


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(coordinate_bounds=(1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            GuardConfig(max_answers_per_window=-1)
        with pytest.raises(ValueError):
            GuardConfig(rate_window=0.0)
        with pytest.raises(ValueError):
            GuardConfig(quarantine_capacity=0)


class TestRejectionReasons:
    def test_valid_event_is_accepted(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        assert guard.admit(event, inference) is None
        assert guard.stats.accepted == 1
        assert guard.stats.quarantined == 0

    def test_non_finite_coordinates(self, inference, small_dataset, worker_pool, distance_model):
        event = make_event(small_dataset, worker_pool, distance_model)
        bad_worker = SimpleNamespace(
            worker_id=event.answer.worker_id,
            locations=(SimpleNamespace(x=float("nan"), y=1.0),),
        )
        bad = AnswerEvent(event.answer, time=0.0, worker=bad_worker)
        guard = EventGuard()
        assert guard.admit(bad, inference) == "coordinates"
        assert guard.stats.reasons == {"coordinates": 1}
        assert "non-finite" in guard.quarantine[0].detail

    def test_out_of_bounds_coordinates(self, inference, small_dataset, worker_pool, distance_model):
        from repro.data.models import Worker
        from repro.spatial.geometry import GeoPoint

        event = make_event(small_dataset, worker_pool, distance_model)
        far_worker = Worker(
            worker_id=event.answer.worker_id, locations=(GeoPoint(500.0, 500.0),)
        )
        bad = AnswerEvent(event.answer, time=0.0, worker=far_worker)
        guard = EventGuard(GuardConfig(coordinate_bounds=(0.0, 0.0, 200.0, 200.0)))
        assert guard.admit(bad, inference) == "coordinates"
        assert "outside" in guard.quarantine[0].detail

    def test_unknown_task_without_payload(self, inference):
        event = AnswerEvent(Answer(worker_id="w0", task_id="ghost", responses=(1,)))
        guard = EventGuard()
        assert guard.admit(event, inference) == "unknown-task"

    def test_unknown_worker_without_payload(self, inference, small_dataset):
        task = small_dataset.tasks[0]
        answer = Answer(
            worker_id="ghost",
            task_id=task.task_id,
            responses=tuple(0 for _ in range(task.num_labels)),
        )
        guard = EventGuard()
        assert guard.admit(AnswerEvent(answer), inference) == "unknown-worker"

    def test_payload_mismatch(self, inference, small_dataset, worker_pool, distance_model):
        event = make_event(small_dataset, worker_pool, distance_model)
        other = small_dataset.tasks[1]
        assert other.task_id != event.answer.task_id
        bad = AnswerEvent(event.answer, time=0.0, task=other)
        guard = EventGuard()
        assert guard.admit(bad, inference) == "payload-mismatch"

    def test_label_arity(self, inference, small_dataset, worker_pool):
        task = small_dataset.tasks[0]
        worker = worker_pool.workers[0]
        answer = Answer(
            worker_id=worker.worker_id, task_id=task.task_id, responses=(1,)
        )
        assert task.num_labels != 1
        guard = EventGuard()
        assert guard.admit(AnswerEvent(answer), inference) == "label-arity"

    def test_duplicate_and_reanswer(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        event = make_event(small_dataset, worker_pool, distance_model)
        guard = EventGuard()
        assert guard.admit(event, inference) is None
        # Identical resubmission: always quarantined.
        assert guard.admit(event, inference) == "duplicate"
        # A changed re-answer is fine by default...
        flipped = Answer(
            worker_id=event.answer.worker_id,
            task_id=event.answer.task_id,
            responses=tuple(1 - r for r in event.answer.responses),
        )
        assert guard.admit(AnswerEvent(flipped), inference) is None
        # ...but rejected when re-answers are disabled.
        strict = EventGuard(GuardConfig(allow_reanswers=False))
        assert strict.admit(event, inference) is None
        assert strict.admit(AnswerEvent(flipped), inference) == "reanswer"

    def test_rate_limit_sliding_window(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard(
            GuardConfig(max_answers_per_window=2, rate_window=10.0)
        )
        events = [
            make_event(small_dataset, worker_pool, distance_model, index=i, time=t)
            for i, t in enumerate((0.0, 1.0, 2.0, 20.0))
        ]
        assert guard.admit(events[0], inference) is None
        assert guard.admit(events[1], inference) is None
        assert guard.admit(events[2], inference) == "rate-limit"
        # The window slides: 20s later the worker may answer again.
        assert guard.admit(events[3], inference) is None


class TestQuarantineLog:
    def test_capacity_bounds_the_log(self, inference):
        guard = EventGuard(GuardConfig(quarantine_capacity=2))
        for i in range(5):
            guard.admit(
                AnswerEvent(Answer(worker_id="w", task_id=f"ghost{i}", responses=(1,))),
                inference,
            )
        assert guard.stats.quarantined == 5
        assert len(guard.quarantine) == 2  # newest two retained
        assert guard.quarantine[-1].event.answer.task_id == "ghost4"

    def test_jsonl_sink_mirrors_quarantined_events(self, tmp_path, inference):
        sink = tmp_path / "quarantine.jsonl"
        guard = EventGuard(GuardConfig(quarantine_sink=sink))
        guard.admit(
            AnswerEvent(Answer(worker_id="w", task_id="ghost", responses=(1,))),
            inference,
        )
        lines = sink.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["reason"] == "unknown-task"
        assert record["task_id"] == "ghost"


class TestHistoryPaths:
    def test_observe_bypasses_validation(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        # Recovery replay: record history without inspecting.
        guard.observe(event)
        assert guard.stats.quarantined == 0
        # The replayed pair now counts for duplicate detection.
        assert guard.admit(event, inference) == "duplicate"

    def test_seed_history_from_checkpoint_answers(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        guard.seed_history([event.answer])
        assert guard.admit(event, inference) == "duplicate"


class TestIngestorIntegration:
    def test_quarantined_events_never_reach_the_model(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        snapshots = SnapshotStore()
        ingestor = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(max_batch_answers=2, max_batch_delay=100.0),
            guard=EventGuard(),
        )
        good = [
            make_event(small_dataset, worker_pool, distance_model, index=i)
            for i in range(2)
        ]
        bad = AnswerEvent(Answer(worker_id="w", task_id="ghost", responses=(1,)))

        # A malformed event used to raise KeyError inside the flush; now it is
        # quarantined at intake and the stream keeps flowing.
        assert ingestor.submit(bad) is None
        assert ingestor.submit(good[0]) is None
        snapshot = ingestor.submit(good[1])
        assert snapshot is not None  # the batch of two good events flushed

        assert ingestor.stats.events_quarantined == 1
        assert ingestor.stats.answers == 2
        assert ingestor.guard.stats.reasons == {"unknown-task": 1}
