"""Tests for repro.serving.guard (event validation and quarantine)."""

import json
from types import SimpleNamespace

import pytest

from repro.core.inference import LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.data.models import Answer
from repro.serving import (
    AnswerEvent,
    AnswerIngestor,
    EventGuard,
    GuardConfig,
    IngestConfig,
    SnapshotStore,
)


@pytest.fixture()
def inference(small_dataset, worker_pool, distance_model):
    return LocationAwareInference(
        small_dataset.tasks, worker_pool.workers, distance_model
    )


def make_event(small_dataset, worker_pool, distance_model, index=0, time=0.0):
    simulator = AnswerSimulator(distance_model, noise=0.0)
    profile = next(iter(worker_pool))
    task = small_dataset.tasks[index % len(small_dataset.tasks)]
    return AnswerEvent(
        simulator.sample_answer(profile, task, seed=500 + index), time=time
    )


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(coordinate_bounds=(1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            GuardConfig(max_answers_per_window=-1)
        with pytest.raises(ValueError):
            GuardConfig(rate_window=0.0)
        with pytest.raises(ValueError):
            GuardConfig(quarantine_capacity=0)


class TestRejectionReasons:
    def test_valid_event_is_accepted(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        assert guard.admit(event, inference) is None
        assert guard.stats.accepted == 1
        assert guard.stats.quarantined == 0

    def test_non_finite_coordinates(self, inference, small_dataset, worker_pool, distance_model):
        event = make_event(small_dataset, worker_pool, distance_model)
        bad_worker = SimpleNamespace(
            worker_id=event.answer.worker_id,
            locations=(SimpleNamespace(x=float("nan"), y=1.0),),
        )
        bad = AnswerEvent(event.answer, time=0.0, worker=bad_worker)
        guard = EventGuard()
        assert guard.admit(bad, inference) == "coordinates"
        assert guard.stats.reasons == {"coordinates": 1}
        assert "non-finite" in guard.quarantine[0].detail

    def test_out_of_bounds_coordinates(self, inference, small_dataset, worker_pool, distance_model):
        from repro.data.models import Worker
        from repro.spatial.geometry import GeoPoint

        event = make_event(small_dataset, worker_pool, distance_model)
        far_worker = Worker(
            worker_id=event.answer.worker_id, locations=(GeoPoint(500.0, 500.0),)
        )
        bad = AnswerEvent(event.answer, time=0.0, worker=far_worker)
        guard = EventGuard(GuardConfig(coordinate_bounds=(0.0, 0.0, 200.0, 200.0)))
        assert guard.admit(bad, inference) == "coordinates"
        assert "outside" in guard.quarantine[0].detail

    def test_unknown_task_without_payload(self, inference):
        event = AnswerEvent(Answer(worker_id="w0", task_id="ghost", responses=(1,)))
        guard = EventGuard()
        assert guard.admit(event, inference) == "unknown-task"

    def test_unknown_worker_without_payload(self, inference, small_dataset):
        task = small_dataset.tasks[0]
        answer = Answer(
            worker_id="ghost",
            task_id=task.task_id,
            responses=tuple(0 for _ in range(task.num_labels)),
        )
        guard = EventGuard()
        assert guard.admit(AnswerEvent(answer), inference) == "unknown-worker"

    def test_payload_mismatch(self, inference, small_dataset, worker_pool, distance_model):
        event = make_event(small_dataset, worker_pool, distance_model)
        other = small_dataset.tasks[1]
        assert other.task_id != event.answer.task_id
        bad = AnswerEvent(event.answer, time=0.0, task=other)
        guard = EventGuard()
        assert guard.admit(bad, inference) == "payload-mismatch"

    def test_label_arity(self, inference, small_dataset, worker_pool):
        task = small_dataset.tasks[0]
        worker = worker_pool.workers[0]
        answer = Answer(
            worker_id=worker.worker_id, task_id=task.task_id, responses=(1,)
        )
        assert task.num_labels != 1
        guard = EventGuard()
        assert guard.admit(AnswerEvent(answer), inference) == "label-arity"

    def test_duplicate_and_reanswer(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        event = make_event(small_dataset, worker_pool, distance_model)
        guard = EventGuard()
        assert guard.admit(event, inference) is None
        # Identical resubmission: always quarantined.
        assert guard.admit(event, inference) == "duplicate"
        # A changed re-answer is fine by default...
        flipped = Answer(
            worker_id=event.answer.worker_id,
            task_id=event.answer.task_id,
            responses=tuple(1 - r for r in event.answer.responses),
        )
        assert guard.admit(AnswerEvent(flipped), inference) is None
        # ...but rejected when re-answers are disabled.
        strict = EventGuard(GuardConfig(allow_reanswers=False))
        assert strict.admit(event, inference) is None
        assert strict.admit(AnswerEvent(flipped), inference) == "reanswer"

    def test_rate_limit_sliding_window(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard(
            GuardConfig(max_answers_per_window=2, rate_window=10.0)
        )
        events = [
            make_event(small_dataset, worker_pool, distance_model, index=i, time=t)
            for i, t in enumerate((0.0, 1.0, 2.0, 20.0))
        ]
        assert guard.admit(events[0], inference) is None
        assert guard.admit(events[1], inference) is None
        assert guard.admit(events[2], inference) == "rate-limit"
        # The window slides: 20s later the worker may answer again.
        assert guard.admit(events[3], inference) is None


class TestQuarantineLog:
    def test_capacity_bounds_the_log(self, inference):
        guard = EventGuard(GuardConfig(quarantine_capacity=2))
        for i in range(5):
            guard.admit(
                AnswerEvent(Answer(worker_id="w", task_id=f"ghost{i}", responses=(1,))),
                inference,
            )
        assert guard.stats.quarantined == 5
        assert len(guard.quarantine) == 2  # newest two retained
        assert guard.quarantine[-1].event.answer.task_id == "ghost4"

    def test_jsonl_sink_mirrors_quarantined_events(self, tmp_path, inference):
        sink = tmp_path / "quarantine.jsonl"
        guard = EventGuard(GuardConfig(quarantine_sink=sink))
        guard.admit(
            AnswerEvent(Answer(worker_id="w", task_id="ghost", responses=(1,))),
            inference,
        )
        lines = sink.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["reason"] == "unknown-task"
        assert record["task_id"] == "ghost"


class TestHistoryPaths:
    def test_observe_bypasses_validation(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        # Recovery replay: record history without inspecting.
        guard.observe(event)
        assert guard.stats.quarantined == 0
        # The replayed pair now counts for duplicate detection.
        assert guard.admit(event, inference) == "duplicate"

    def test_seed_history_from_checkpoint_answers(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        guard = EventGuard()
        event = make_event(small_dataset, worker_pool, distance_model)
        guard.seed_history([event.answer])
        assert guard.admit(event, inference) == "duplicate"


class TestIngestorIntegration:
    def test_quarantined_events_never_reach_the_model(
        self, inference, small_dataset, worker_pool, distance_model
    ):
        snapshots = SnapshotStore()
        ingestor = AnswerIngestor(
            inference,
            snapshots,
            config=IngestConfig(max_batch_answers=2, max_batch_delay=100.0),
            guard=EventGuard(),
        )
        good = [
            make_event(small_dataset, worker_pool, distance_model, index=i)
            for i in range(2)
        ]
        bad = AnswerEvent(Answer(worker_id="w", task_id="ghost", responses=(1,)))

        # A malformed event used to raise KeyError inside the flush; now it is
        # quarantined at intake and the stream keeps flowing.
        assert ingestor.submit(bad) is None
        assert ingestor.submit(good[0]) is None
        snapshot = ingestor.submit(good[1])
        assert snapshot is not None  # the batch of two good events flushed

        assert ingestor.stats.events_quarantined == 1
        assert ingestor.stats.answers == 2
        assert ingestor.guard.stats.reasons == {"unknown-task": 1}


# ------------------------------------------------------------------ trust
def make_trust_tensor(rows, num_workers):
    """A minimal stand-in for AnswerTensor's label-row view.

    ``rows`` is a list of ``(worker_row, cell, response, distance)`` tuples,
    one single-label answer each — exactly the fields ``trust_scores`` reads.
    """
    import numpy as np

    return SimpleNamespace(
        num_workers=num_workers,
        num_answers=len(rows),
        worker_ids=tuple(f"w{i}" for i in range(num_workers)),
        responses=np.array([r[2] for r in rows], dtype=float),
        r_worker=np.array([r[0] for r in rows], dtype=np.intp),
        r_label=np.array([r[1] for r in rows], dtype=np.intp),
        r_answer=np.arange(len(rows), dtype=np.intp),
        distances=np.array([r[3] for r in rows], dtype=float),
    )


class TestTrustScores:
    def test_empty_tensor_is_uninformative(self):
        import numpy as np

        from repro.serving.guard import trust_scores

        scores = trust_scores(make_trust_tensor([], 4))
        np.testing.assert_array_equal(scores, np.full(4, 0.5))

    def test_near_agreement_separates_honest_from_coin(self):
        from repro.serving.guard import trust_scores

        # Five workers agree on cell 0 at near distance; worker 5 dissents.
        rows = [(w, 0, 1.0, 0.02) for w in range(5)] + [(5, 0, 0.0, 0.02)]
        scores = trust_scores(make_trust_tensor(rows, 6))
        assert all(scores[w] > 0.5 for w in range(5))
        assert scores[5] < 0.5

    def test_far_rows_carry_no_evidence(self):
        # The reference floor is exactly 0.5: far from a task an honest local
        # worker and a coin are statistically identical, so far agreement and
        # far dissent must both contribute ~zero log-likelihood ratio.
        from repro.serving.guard import trust_scores

        rows = [(w, 0, 1.0, 1.0) for w in range(5)] + [(5, 0, 0.0, 1.0)]
        scores = trust_scores(make_trust_tensor(rows, 6))
        assert all(abs(score - 0.5) < 1e-6 for score in scores)

    def test_thin_cells_are_ignored(self):
        # Two other voters < min_votes=3: nobody is judged on the cell.
        from repro.serving.guard import trust_scores

        rows = [(w, 0, 1.0, 0.0) for w in range(3)]
        scores = trust_scores(make_trust_tensor(rows, 3))
        assert list(scores) == [0.5, 0.5, 0.5]

    def test_soft_majorities_are_ignored(self):
        # A 3-3 split leaves every leave-one-out share within the firm
        # margin of 0.5 — contested cells judge no one.
        from repro.serving.guard import trust_scores

        rows = [(w, 0, 1.0, 0.0) for w in range(3)]
        rows += [(w, 0, 0.0, 0.0) for w in range(3, 6)]
        scores = trust_scores(make_trust_tensor(rows, 6))
        assert list(scores) == [0.5] * 6

    def test_own_votes_never_vouch(self):
        # A worker alone on ten cells: its own answers are excluded from the
        # consensus it is judged against, so no evidence accrues.
        from repro.serving.guard import trust_scores

        rows = [(0, cell, 1.0, 0.0) for cell in range(10)]
        scores = trust_scores(make_trust_tensor(rows, 1))
        assert scores[0] == 0.5

    def test_excluded_votes_are_struck_but_workers_still_scored(self):
        from repro.serving.guard import trust_scores

        # Four honest voters against three coordinated dissenters per cell.
        rows = []
        for cell in range(4):
            rows += [(w, cell, 1.0, 0.02) for w in range(4)]
            rows += [(w, cell, 0.0, 0.02) for w in range(4, 7)]
        tensor = make_trust_tensor(rows, 7)

        # With the dissenters voting, every leave-one-out share is contested.
        baseline = trust_scores(tensor)
        assert all(score == 0.5 for score in baseline)

        # Striking their votes firms the honest consensus back up — and the
        # struck workers are still scored against it (rehabilitation path).
        scores = trust_scores(tensor, excluded=("w4", "w5", "w6"))
        assert all(scores[w] > 0.5 for w in range(4))
        assert all(scores[w] < 0.5 for w in range(4, 7))

    def test_deterministic(self):
        import numpy as np

        from repro.serving.guard import trust_scores

        rows = [(w, c, float((w + c) % 2), 0.1 * w) for w in range(6) for c in range(5)]
        tensor = make_trust_tensor(rows, 6)
        np.testing.assert_array_equal(trust_scores(tensor), trust_scores(tensor))


class TestReputationConfigValidation:
    def test_invalid_values_rejected(self):
        from repro.serving import ReputationConfig

        with pytest.raises(ValueError):
            ReputationConfig(quarantine_below=0.5, probation_below=0.3)
        with pytest.raises(ValueError):
            ReputationConfig(probation_below=0.5, readmit_above=0.4)
        with pytest.raises(ValueError):
            ReputationConfig(min_answers=0)
        with pytest.raises(ValueError):
            ReputationConfig(demote_patience=0)
        with pytest.raises(ValueError):
            ReputationConfig(promote_patience=0)
        with pytest.raises(ValueError):
            ReputationConfig(posterior_smoothing=1.0)
        with pytest.raises(ValueError):
            ReputationConfig(quarantined_weight=1.5)


class TestReputationTracker:
    @staticmethod
    def make_tracker(**overrides):
        from repro.serving import ReputationConfig, ReputationTracker

        kwargs = dict(
            min_answers=1,
            demote_patience=1,
            promote_patience=1,
            posterior_smoothing=0.0,
        )
        kwargs.update(overrides)
        return ReputationTracker(ReputationConfig(**kwargs))

    def test_min_answers_gates_judgement(self):
        tracker = self.make_tracker(min_answers=5)
        assert tracker.evaluate(["w"], [0.01], {"w": 4}) == 0
        assert tracker.tier("w") == "trusted"
        assert tracker.evaluate(["w"], [0.01], {"w": 5}) == 1
        assert tracker.is_quarantined("w")

    def test_demotion_requires_consecutive_evaluations(self):
        tracker = self.make_tracker(demote_patience=2)
        counts = {"w": 50}
        assert tracker.evaluate(["w"], [0.05], counts) == 0  # streak 1
        assert tracker.tier("w") == "trusted"
        # A healthy evaluation in between resets the streak.
        assert tracker.evaluate(["w"], [0.9], counts) == 0
        assert tracker.evaluate(["w"], [0.05], counts) == 0  # streak 1 again
        assert tracker.evaluate(["w"], [0.05], counts) == 1  # streak 2: demote
        assert tracker.is_quarantined("w")
        assert tracker.transitions == 1
        assert tracker.version == 1

    def test_readmission_through_hysteresis(self):
        tracker = self.make_tracker(promote_patience=2)
        counts = {"w": 50}
        tracker.evaluate(["w"], [0.05], counts)
        assert tracker.is_quarantined("w")
        # Inside the dead band (probation_below < p < readmit_above) every
        # tier holds — drifting just over quarantine_below is not recovery.
        tracker.evaluate(["w"], [0.40], counts)
        assert tracker.is_quarantined("w")
        tracker.evaluate(["w"], [0.9], counts)  # promote streak 1
        assert tracker.is_quarantined("w")
        tracker.evaluate(["w"], [0.9], counts)  # streak 2: re-admitted
        assert tracker.tier("w") == "trusted"
        assert not tracker.quarantined_ids

    def test_dead_band_holds_probation(self):
        tracker = self.make_tracker()
        counts = {"w": 50}
        tracker.evaluate(["w"], [0.2], counts)
        assert tracker.tier("w") == "probation"
        tracker.evaluate(["w"], [0.40], counts)
        assert tracker.tier("w") == "probation"

    def test_posterior_smoothing_damps_spikes(self):
        tracker = self.make_tracker(posterior_smoothing=0.5)
        counts = {"w": 50}
        tracker.evaluate(["w"], [0.0], counts)
        assert tracker.is_quarantined("w")
        # One spiked evaluation only reaches the smoothed midpoint 0.45,
        # which is not strictly above readmit_above.
        tracker.evaluate(["w"], [0.9], counts)
        assert tracker.is_quarantined("w")
        # The sustained trend does cross it.
        tracker.evaluate(["w"], [0.9], counts)
        assert tracker.tier("w") == "trusted"

    def test_trust_weight_and_tier_counts(self):
        tracker = self.make_tracker()
        counts = {"bad": 50, "meh": 50}
        tracker.evaluate(["bad", "meh"], [0.05, 0.2], counts)
        assert tracker.trust_weight("bad") == tracker.config.quarantined_weight
        assert tracker.trust_weight("meh") == 1.0
        assert tracker.trust_weight("never-seen") == 1.0
        assert tracker.tier_counts() == {"probation": 1, "quarantined": 1}
        assert tracker.quarantined_ids == frozenset({"bad"})

    def test_non_finite_posteriors_are_skipped(self):
        tracker = self.make_tracker()
        assert tracker.evaluate(["w"], [float("nan")], {"w": 50}) == 0
        assert tracker.tier("w") == "trusted"

    def test_state_roundtrip_is_bit_equal(self):
        from repro.serving import ReputationConfig, ReputationTracker

        tracker = self.make_tracker(
            demote_patience=2, posterior_smoothing=0.5, min_answers=1
        )
        counts = {"a": 50, "b": 50, "c": 50}
        ids = ["a", "b", "c"]
        tracker.evaluate(ids, [0.05, 0.2, 0.9], counts)
        tracker.evaluate(ids, [0.05, 0.2, 0.9], counts)  # mixed tiers + streaks
        state = json.loads(json.dumps(tracker.state_dict()))

        restored = ReputationTracker(ReputationConfig(min_answers=1))
        restored.restore_state(state)
        assert restored.state_dict() == tracker.state_dict()
        assert restored.version == tracker.version
        assert restored.transitions == tracker.transitions
        for worker_id in ids:
            assert restored.tier(worker_id) == tracker.tier(worker_id)
