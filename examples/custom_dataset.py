"""Bring your own POIs: build tasks by hand, save/load them, and run inference.

Shows the low-level data API: constructing :class:`~repro.data.models.POI`,
:class:`~repro.data.models.Task` and :class:`~repro.data.models.Worker` objects
directly (e.g. from your own city's data), serialising the dataset to JSON,
collecting simulated answers and inferring the labels.

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CrowdPlatform, GeoPoint, LocationAwareInference, POI, Task
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.budget import Budget
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.io import load_dataset, save_dataset
from repro.data.models import Dataset
from repro.framework.metrics import labelling_accuracy
from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import DistanceModel


def build_dataset() -> Dataset:
    """Six hand-written Beijing POIs with candidate labels and ground truth."""
    pois = [
        ("Olympic Forest Park", GeoPoint(116.390, 40.013), "park",
         [("park", 1), ("Olympics", 1), ("take a walk", 1), ("business", 0), ("palace", 0)]),
        ("798 Art Zone", GeoPoint(116.495, 39.984), "museum",
         [("art", 1), ("gallery", 1), ("exhibition", 1), ("hiking", 0), ("noodles", 0)]),
        ("Tsinghua University", GeoPoint(116.326, 40.003), "university",
         [("campus", 1), ("students", 1), ("research", 1), ("souvenirs", 0), ("arena", 0)]),
        ("Quanjude Roast Duck", GeoPoint(116.410, 39.901), "restaurant",
         [("roast duck", 1), ("dinner", 1), ("local cuisine", 1), ("pagoda", 0), ("lecture hall", 0)]),
        ("Workers' Stadium", GeoPoint(116.447, 39.930), "stadium",
         [("stadium", 1), ("football", 1), ("concerts", 1), ("monks", 0), ("library", 0)]),
        ("Lama Temple", GeoPoint(116.417, 39.947), "temple",
         [("temple", 1), ("incense", 1), ("heritage", 1), ("electronics", 0), ("departures", 0)]),
    ]
    tasks = []
    for index, (name, location, category, labelled) in enumerate(pois):
        poi = POI(
            poi_id=f"custom-poi-{index}",
            name=name,
            location=location,
            category=category,
            review_count=3000 - 400 * index,
        )
        tasks.append(
            Task(
                task_id=f"custom-task-{index}",
                poi=poi,
                labels=tuple(label for label, _ in labelled),
                truth=tuple(truth for _, truth in labelled),
            )
        )
    return Dataset(name="CustomBeijing", tasks=tasks, metric="haversine")


def main() -> None:
    dataset = build_dataset()

    # Round-trip the dataset through JSON, as you would when distributing it.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_dataset(dataset, Path(tmp) / "custom_beijing.json")
        dataset = load_dataset(path)
        print(f"saved and reloaded {dataset.name}: {len(dataset)} tasks from {path.name}")

    distance_model = DistanceModel.from_pois(dataset.poi_locations, metric="haversine")
    bounds = BoundingBox.from_points(dataset.poi_locations).expand(0.05)
    pool = WorkerPool.generate(
        bounds, spec=WorkerPoolSpec(num_workers=12), seed=3
    )
    platform = CrowdPlatform(
        dataset=dataset,
        worker_pool=pool,
        budget=Budget(total=60),
        distance_model=distance_model,
        answer_simulator=AnswerSimulator(distance_model, noise=0.05),
        seed=3,
    )
    answers = platform.collect_batch_answers(answers_per_task=5, seed=3)

    inference = LocationAwareInference(dataset.tasks, pool.workers, distance_model)
    inference.fit(answers)
    accuracy = labelling_accuracy(inference.predict_all(), dataset.tasks)
    print(f"inferred labels for {len(dataset)} hand-written POIs "
          f"with accuracy {accuracy:.3f} from {len(answers)} simulated answers")

    for task in dataset.tasks:
        predicted = inference.predict(task.task_id)
        chosen = [label for label, keep in zip(task.labels, predicted) if keep]
        print(f"  {task.poi.name}: {', '.join(chosen)}")


if __name__ == "__main__":
    main()
