"""Quickstart: label a POI dataset with a simulated crowd in ~40 lines.

Generates the synthetic Beijing dataset, simulates a worker pool and a
Deployment-1 style answer collection (five answers per task), fits the
location-aware inference model and compares it against majority voting.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    LocationAwareInference,
    MajorityVoteInference,
    generate_beijing_dataset,
)
from repro.framework.experiment import build_platform
from repro.framework.metrics import labelling_accuracy


def main() -> None:
    # 1. A dataset of 200 POIs, each with 10 candidate labels and hidden ground truth.
    dataset = generate_beijing_dataset(seed=7)
    print(f"dataset: {dataset.name} with {len(dataset)} tasks, "
          f"{dataset.total_correct_labels} correct / {dataset.total_incorrect_labels} incorrect labels")

    # 2. A simulated crowdsourcing platform: 60 workers with latent quality and
    #    distance-sensitivity profiles, a budget of 1000 task assignments.
    platform = build_platform(dataset, budget=1000, seed=42)
    answers = platform.collect_batch_answers(answers_per_task=5, seed=42)
    print(f"collected {len(answers)} answers from {len(platform.worker_pool)} workers "
          f"({platform.budget.spent} budget units spent)")

    # 3. Fit the paper's location-aware inference model (IM) and the MV baseline.
    inference = LocationAwareInference(
        dataset.tasks, platform.worker_pool.workers, platform.distance_model
    )
    inference.fit(answers)
    majority = MajorityVoteInference(dataset.tasks).fit(answers)

    im_accuracy = labelling_accuracy(inference.predict_all(), dataset.tasks)
    mv_accuracy = labelling_accuracy(majority.predict_all(), dataset.tasks)
    print(f"labelling accuracy — IM: {im_accuracy:.3f}, MV: {mv_accuracy:.3f}")

    # 4. Inspect one task: the inferred labels and the estimated worker qualities.
    task = dataset.tasks[0]
    probabilities = inference.label_probabilities(task.task_id)
    print(f"\nPOI: {task.poi.name}")
    for label, truth, probability in zip(task.labels, task.truth, probabilities):
        marker = "correct " if truth else "distractor"
        print(f"  P(correct)={probability:.2f}  [{marker}] {label}")

    top_workers = sorted(
        inference.parameters.workers.items(),
        key=lambda item: item[1].p_qualified,
        reverse=True,
    )[:3]
    print("\nhighest estimated worker qualities:")
    for worker_id, params in top_workers:
        print(f"  {worker_id}: P(qualified)={params.p_qualified:.2f}, "
              f"distance weights={[round(float(w), 2) for w in params.distance_weights]}")


if __name__ == "__main__":
    main()
