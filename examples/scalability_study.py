"""Scalability study: how inference and assignment scale with problem size.

Reproduces the spirit of the paper's Figures 13 and 14 at laptop-friendly
sizes: EM inference runtime versus the number of collected answers, and AccOpt
batch-assignment runtime versus the number of tasks.  Useful as a template for
sizing your own deployment.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

import time

from repro.analysis.reporting import format_series_table
from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import generate_scalability_dataset
from repro.data.models import AnswerSet
from repro.framework.experiment import build_distance_model, build_platform
from repro.spatial.bbox import BoundingBox

ANSWER_COUNTS = (500, 1000, 2000)
TASK_COUNTS = (250, 500, 1000)


def inference_scaling() -> None:
    print("EM inference runtime vs number of answers:")
    runtimes = []
    iterations = []
    for count in ANSWER_COUNTS:
        dataset = generate_scalability_dataset(num_tasks=max(100, count // 5), seed=3)
        platform = build_platform(dataset, budget=count, seed=3)
        answers_per_task = max(1, count // len(dataset.tasks))
        answers = platform.collect_batch_answers(answers_per_task=answers_per_task, seed=3)
        model = LocationAwareInference(
            dataset.tasks,
            platform.worker_pool.workers,
            platform.distance_model,
            config=InferenceConfig(max_iterations=25),
        )
        started = time.perf_counter()
        result = model.run_em(answers)
        runtimes.append(time.perf_counter() - started)
        iterations.append(result.iterations)
    print(
        format_series_table(
            "answers",
            [len_ for len_ in ANSWER_COUNTS],
            {"runtime (s)": runtimes, "iterations": iterations},
            precision=2,
        )
    )


def assignment_scaling() -> None:
    print("\nAccOpt batch-assignment runtime vs number of tasks (10 workers, h=2):")
    runtimes_ms = []
    for num_tasks in TASK_COUNTS:
        dataset = generate_scalability_dataset(num_tasks=num_tasks, seed=5)
        distance_model = build_distance_model(dataset)
        bounds = BoundingBox.from_points(dataset.poi_locations)
        pool = WorkerPool.generate(bounds, spec=WorkerPoolSpec(num_workers=10), seed=5)
        assigner = AccOptAssigner(dataset.tasks, pool.workers, distance_model)
        started = time.perf_counter()
        assigner.assign(pool.worker_ids, 2, AnswerSet())
        runtimes_ms.append((time.perf_counter() - started) * 1000.0)
    print(
        format_series_table(
            "tasks", list(TASK_COUNTS), {"assignment time (ms)": runtimes_ms}, precision=1
        )
    )


def main() -> None:
    inference_scaling()
    assignment_scaling()


if __name__ == "__main__":
    main()
