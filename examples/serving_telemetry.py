"""Serving telemetry: phase-attributed traces and the metrics registry.

Runs one online serving session with the unified telemetry substrate
(:mod:`repro.obs`) fully enabled — the programmatic equivalent of::

    repro-poi serve-sim --metrics-dir DIR --metrics-interval 5 --trace \
        --metrics-summary

and then shows how to *read* the three things the instrumentation answers:

1. **Where does the wall time go as the stream ages?**  The report's phase
   breakdown splits the stream into quarters and attributes each quarter's
   wall clock to pipeline stages (guard / journal / apply / refresh /
   publish / assign).  A growing ``refresh`` share late in the stream is the
   throughput-decay signature; a growing ``apply`` share means the
   incremental updates themselves are the cost.
2. **What did each component do?**  Counters and histograms land in one
   :class:`~repro.obs.metrics.MetricsRegistry` — journal append latency
   (fsync-labelled), snapshot publishes by kind, EM sweeps and early-exited
   entities, assignment latency percentiles from exact bounded histograms.
3. **What happened, span by span?**  With tracing on, the most recent spans
   are retained in a bounded ring and exported as Chrome ``trace_event``
   JSON — load ``trace.json`` in ``chrome://tracing`` or Perfetto to see the
   pipeline lane by lane.

Run with::

    python examples/serving_telemetry.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import generate_beijing_dataset
from repro.framework.experiment import build_platform, build_worker_pool
from repro.serving import IngestConfig, OnlineServingService, ServingConfig

BUDGET = 240


def main() -> None:
    dataset = generate_beijing_dataset(seed=7)
    pool = build_worker_pool(dataset, seed=2016)
    platform = build_platform(
        dataset, budget=BUDGET, worker_pool=pool, workers_per_round=5, seed=2016
    )

    metrics_dir = Path(tempfile.mkdtemp(prefix="serving-telemetry-"))
    config = ServingConfig(
        ingest=IngestConfig(max_batch_answers=32, full_refresh_interval=120),
        seed=2016,
        metrics_dir=metrics_dir,
        metrics_interval=5,
        trace=True,
    )
    service = OnlineServingService(platform, config=config)
    try:
        report = service.run()
    finally:
        service.close()

    print(report.summary())

    # 1. The phase breakdown, programmatically: which stage dominates the
    #    final stream quarter, and how much wall time the spans explain.
    phases = report.phases
    last = phases.quarters[-1]
    dominant = max(phases.stages, key=last.share)
    print(
        f"\nlast-quarter dominant stage: {dominant} "
        f"({last.share(dominant):.0%} of that quarter's wall time); "
        f"spans attribute {phases.attributed_fraction:.0%} of the run overall"
    )

    # 2. The registry: exact-count histograms and component counters.
    metrics = service.metrics
    assign = metrics.get("assign_latency_seconds")
    print(
        f"assignment latency from the registry histogram: "
        f"p50 {assign.percentile(50.0) * 1e3:.2f} ms, "
        f"p95 {assign.percentile(95.0) * 1e3:.2f} ms "
        f"over {assign.count} requests"
    )
    publishes = {
        labels["kind"]: int(counter.value)
        for labels, counter in metrics.find("snapshot_publishes_total")
    }
    print(f"snapshot publishes by kind: {publishes}")

    # 3. The on-disk artifacts the CLI flags produce.
    snapshots = [
        json.loads(line)
        for line in (metrics_dir / "metrics.jsonl").read_text().splitlines()
    ]
    trace_events = json.loads((metrics_dir / "trace.json").read_text())
    print(
        f"\nexported to {metrics_dir}: {len(snapshots)} metrics.jsonl snapshots "
        f"(stamped with rounds/answers), metrics.prom, and trace.json with "
        f"{len(trace_events['traceEvents'])} span events "
        f"(open in chrome://tracing or Perfetto)"
    )


if __name__ == "__main__":
    main()
