"""Worker and POI analysis: reproduce the paper's data-analysis figures.

Collects a Deployment-1 corpus on the China scenic-spot dataset and prints the
three analyses of Section V-B:

* the per-worker accuracy histogram for nearby answers (Figure 6),
* the distance-vs-accuracy curves of the most active workers (Figure 7),
* the distance-vs-accuracy curves per POI popularity class (Figure 8).

Run with::

    python examples/worker_analysis.py
"""

from __future__ import annotations

from repro import generate_china_dataset
from repro.analysis.poi_analysis import poi_influence_curves
from repro.analysis.reporting import format_series_table
from repro.analysis.worker_analysis import (
    distance_accuracy_curves,
    worker_quality_histogram,
)
from repro.framework.experiment import build_platform

DISTANCE_BINS = ["[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"]


def main() -> None:
    dataset = generate_china_dataset(seed=11)
    platform = build_platform(dataset, budget=1000, seed=23)
    answers = platform.collect_batch_answers(answers_per_task=5, seed=23)
    workers = platform.worker_pool.workers
    distance_model = platform.distance_model
    print(f"collected {len(answers)} answers on {dataset.name}")

    histogram = worker_quality_histogram(
        answers, dataset, workers, distance_model, max_distance=0.2
    )
    print("\nFigure 6 — % of workers per accuracy range (answers within distance 0.2):")
    print(
        format_series_table(
            "accuracy range",
            ["0-20%", "20-40%", "40-60%", "60-80%", "80-100%"],
            {"% of workers": list(histogram.percentages)},
            precision=1,
        )
    )

    curves = distance_accuracy_curves(
        answers, dataset, workers, distance_model, top_k=5
    )
    print("\nFigure 7 — accuracy vs distance for the five most active workers:")
    print(
        format_series_table(
            "distance",
            DISTANCE_BINS,
            {curve.worker_id: curve.accuracies for curve in curves},
        )
    )

    influence = poi_influence_curves(answers, dataset, workers, distance_model)
    print("\nFigure 8 — accuracy vs distance per POI review-count class:")
    print(
        format_series_table(
            "distance",
            DISTANCE_BINS,
            {curve.review_class: curve.accuracies for curve in influence},
        )
    )


if __name__ == "__main__":
    main()
