"""Online campaign: the full alternating inference / task-assignment loop.

Reproduces the paper's Deployment 2 scenario at a reduced budget: workers
arrive in batches, the AccOpt assigner hands each of them ``h = 2`` tasks, the
platform simulates their answers, the inference model refreshes (incremental EM
between periodic full runs) and the loop repeats until the budget runs out.
The Random and Spatial-First baselines are run on the same simulated crowd for
comparison.

The second half of the example replays the same kind of workload through the
**online serving subsystem** (:mod:`repro.serving`): answer events are
micro-batched into incremental updates, every refresh publishes an immutable
versioned snapshot, and each arriving worker is served an assignment computed
against the latest snapshot — with per-request latency reported, the way a
production deployment of the paper's system would run.

Run with::

    python examples/online_campaign.py
"""

from __future__ import annotations

from repro import generate_beijing_dataset
from repro.core.inference import InferenceConfig
from repro.framework.config import FrameworkConfig
from repro.framework.experiment import (
    build_platform,
    build_worker_pool,
    compare_assigners,
)
from repro.analysis.reporting import format_series_table, format_table
from repro.serving import IngestConfig, OnlineServingService, ServingConfig

BUDGET = 240
CHECKPOINTS = (120, 180, 240)


def main() -> None:
    dataset = generate_beijing_dataset(seed=7)
    pool = build_worker_pool(dataset, seed=2016)

    config = FrameworkConfig(
        budget=BUDGET,
        tasks_per_worker=2,
        workers_per_round=5,
        evaluation_checkpoints=CHECKPOINTS,
        full_refresh_interval=100,
        inference=InferenceConfig(max_iterations=40),
    )

    print(f"running Random / SF / AccOpt campaigns on {dataset.name} "
          f"({BUDGET} assignments each, h={config.tasks_per_worker}) ...")
    result = compare_assigners(dataset, config, worker_pool=pool, seed=2016)

    accuracy_table = format_series_table(
        "assignments",
        result.checkpoints,
        {name: result.accuracy[name] for name in ("Random", "SF", "AccOpt")},
    )
    print("\nlabelling accuracy by spent budget (Figure 11 shape):")
    print(accuracy_table)

    rows = []
    for name in ("Random", "SF", "AccOpt"):
        stats = result.stats[name]
        few, medium, many = stats.assignment_distribution
        rows.append(
            [
                name,
                f"{stats.worker_quality * 100:.1f}%",
                f"[{few:.0f}%, {medium:.0f}%, {many:.0f}%]",
                f"{stats.average_acc * 100:.1f}%",
            ]
        )
    print("\ncampaign statistics (Table II shape):")
    print(
        format_table(
            ["Method", "Worker Quality", "Assigned Workers [<3, 3-7, >7]", "Average Acc"],
            rows,
        )
    )

    serving_session(dataset)


def serving_session(dataset) -> None:
    """The same workload served through the online serving subsystem."""
    pool = build_worker_pool(dataset, seed=2016)
    platform = build_platform(
        dataset, budget=BUDGET, worker_pool=pool, workers_per_round=5, seed=2016
    )
    config = ServingConfig(
        strategy="accopt",
        tasks_per_worker=2,
        ingest=IngestConfig(
            max_batch_answers=32, max_batch_delay=5.0, full_refresh_interval=100
        ),
        inference=InferenceConfig(max_iterations=40),
        seed=2016,
    )
    service = OnlineServingService(platform, config=config)
    print("\nonline serving session (streaming ingestion + versioned snapshots):")
    report = service.run()
    print(report.summary())


if __name__ == "__main__":
    main()
